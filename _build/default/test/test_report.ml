(* Unit tests for the report and result-table renderers, and DOT export. *)

module Ir = Hypar_ir
module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform

let prepared = lazy (Flow.prepare ~name:"loopy" {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 2000; i++) {
    s += i * i;
  }
  out[0] = s;
}
|})

let result = lazy (
  let p = Lazy.force prepared in
  Flow.partition (List.hd (Platform.paper_configs ())) ~timing_constraint:10_000 p)

let contains = Str_contains.contains

let test_markdown_sections () =
  let md = Hypar_core.Report.markdown (Lazy.force result) in
  List.iter
    (fun s -> Alcotest.(check bool) ("contains " ^ s) true (contains md s))
    [
      "# Partitioning report — loopy";
      "## Kernel analysis (Eq. 1)";
      "## Engine trace (Eq. 2 after each movement)";
      "## Final assignment";
      "timing constraint: 10000 FPGA cycles";
    ]

let test_markdown_assignment_consistency () =
  let r = Lazy.force result in
  let md = Hypar_core.Report.markdown r in
  (* every moved block appears with side CGC *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "BB%d reported on CGC" b)
        true
        (contains md (Printf.sprintf "| %d | CGC |" b)))
    r.Engine.moved

let test_result_table_columns () =
  let p = Lazy.force prepared in
  let runs =
    List.map
      (fun pl -> Flow.partition pl ~timing_constraint:10_000 p)
      (Platform.paper_configs ())
  in
  let table = Hypar_core.Result_table.render ~title:"t" runs in
  List.iter
    (fun s -> Alcotest.(check bool) ("row " ^ s) true (contains table s))
    [ "Initial cycles"; "Cycles in CGC"; "BB no."; "Final cycles";
      "% cycles reduction"; "Status"; "two 2x2"; "three 2x2" ];
  let csv = Hypar_core.Result_table.render_csv runs in
  Alcotest.(check int) "csv rows = header + 4 configs" 5
    (List.length (String.split_on_char '\n' (String.trim csv)))

let test_moved_blocks_string () =
  let r = Lazy.force result in
  let s = Hypar_core.Result_table.moved_blocks_string r in
  List.iter
    (fun b ->
      Alcotest.(check bool) "mentions moved block" true
        (contains s (string_of_int b)))
    r.Engine.moved

let test_dot_export () =
  let p = Lazy.force prepared in
  let dot = Ir.Dot.cfg_to_dot p.Flow.cdfg in
  Alcotest.(check bool) "digraph" true (contains dot "digraph cfg");
  Alcotest.(check bool) "has edges" true (contains dot "->");
  let highlighted = Ir.Dot.cfg_to_dot ~highlight:[ 1 ] p.Flow.cdfg in
  Alcotest.(check bool) "highlight style" true (contains highlighted "filled");
  let dfg = (Ir.Cdfg.info p.Flow.cdfg 1).Ir.Cdfg.dfg in
  let ddot = Ir.Dot.dfg_to_dot ~title:"BB1" dfg in
  Alcotest.(check bool) "dfg digraph" true (contains ddot "digraph \"BB1\"");
  Alcotest.(check bool) "ranks by level" true (contains ddot "(L1)")

let test_gantt_renders () =
  let p = Lazy.force prepared in
  let cgc = Hypar_coarsegrain.Cgc.two_by_two 2 in
  let dfg = (Ir.Cdfg.info p.Flow.cdfg 1).Ir.Cdfg.dfg in
  match Hypar_coarsegrain.Coarse_map.map_dfg cgc dfg with
  | Some m ->
    let gantt =
      Hypar_coarsegrain.Binding.render_gantt cgc dfg
        m.Hypar_coarsegrain.Coarse_map.schedule
        m.Hypar_coarsegrain.Coarse_map.binding
    in
    Alcotest.(check bool) "has cycle header" true (contains gantt "cycle:");
    Alcotest.(check bool) "has node rows" true (contains gantt "c0[0,0]");
    Alcotest.(check bool) "has mem rows" true (contains gantt "mem0");
    Alcotest.(check bool) "shows a mul" true (contains gantt "mul")
  | None -> Alcotest.fail "expected mapping"

let suite =
  [
    Alcotest.test_case "markdown sections" `Quick test_markdown_sections;
    Alcotest.test_case "assignment consistency" `Quick test_markdown_assignment_consistency;
    Alcotest.test_case "result table" `Quick test_result_table_columns;
    Alcotest.test_case "moved blocks string" `Quick test_moved_blocks_string;
    Alcotest.test_case "DOT export" `Quick test_dot_export;
    Alcotest.test_case "Gantt rendering" `Quick test_gantt_renders;
  ]
