(* Unit tests for the control-flow clean-up pass. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let compile_raw src = Driver.compile_exn ~simplify:false src

let out0 ?(inputs = []) cdfg =
  (Interp.array_exn (Interp.run ~inputs cdfg) "out").(0)

let test_unreachable_removed_after_folding () =
  let cdfg = compile_raw {|
int out[1];
void main() {
  if (1 < 2) {
    out[0] = 10;
  } else {
    out[0] = 20;
  }
}
|} in
  let cleaned = Ir.Passes.simplify_cfg (Ir.Passes.const_fold cdfg) in
  Alcotest.(check int) "semantics" 10 (out0 cleaned);
  Alcotest.(check bool) "dead arm removed" true
    (Ir.Cdfg.block_count cleaned < Ir.Cdfg.block_count cdfg)

let test_straightline_collapses () =
  (* after folding, a pure straight-line program becomes a single block *)
  let cdfg = compile_raw {|
int out[1];
void main() {
  int a = 1;
  if (a) { a = a + 1; }
  if (a > 100) { a = 0; }
  out[0] = a;
}
|} in
  let cleaned = Ir.Passes.optimize cdfg in
  Alcotest.(check int) "semantics" 2 (out0 cleaned);
  Alcotest.(check int) "one block remains" 1 (Ir.Cdfg.block_count cleaned)

let test_loops_preserved () =
  let cdfg = compile_raw {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 7; i++) { s += i; }
  out[0] = s;
}
|} in
  let cleaned = Ir.Passes.simplify_cfg cdfg in
  Alcotest.(check int) "semantics" 21 (out0 cleaned);
  Alcotest.(check int) "loop structure intact" 1
    (List.length (Ir.Loop.find (Ir.Cdfg.cfg cleaned)))

let test_entry_stays_first () =
  let cdfg = compile_raw {|
int out[1];
void main() {
  int x = 3;
  if (x > 1) { x = 5; } else { x = 7; }
  out[0] = x;
}
|} in
  let cleaned = Ir.Passes.simplify_cfg cdfg in
  let cfg = Ir.Cdfg.cfg cleaned in
  Alcotest.(check int) "entry id 0" 0 (Ir.Cfg.entry cfg);
  Alcotest.(check int) "semantics" 5 (out0 cleaned)

let test_branch_semantics_after_cleanup () =
  (* data-dependent branches must survive untouched *)
  let src = {|
int out[1];
int in[1];
void main() {
  int x = in[0];
  if (x & 1) { out[0] = 100 + x; } else { out[0] = 200 + x; }
}
|} in
  let cleaned = Ir.Passes.optimize (compile_raw src) in
  Alcotest.(check int) "odd input" 103 (out0 ~inputs:[ ("in", [| 3 |]) ] cleaned);
  Alcotest.(check int) "even input" 204 (out0 ~inputs:[ ("in", [| 4 |]) ] cleaned)

let test_random_semantics () =
  for seed = 300 to 312 do
    let src = Hypar_apps.Synth.random_structured_main ~seed ~depth:3 () in
    let raw = compile_raw src in
    let cleaned = Ir.Passes.simplify_cfg raw in
    Alcotest.(check int) (Printf.sprintf "seed %d" seed) (out0 raw) (out0 cleaned)
  done

let test_idempotent () =
  let cdfg = compile_raw (Hypar_apps.Synth.random_structured_main ~seed:99 ~depth:3 ()) in
  let once = Ir.Passes.simplify_cfg cdfg in
  let twice = Ir.Passes.simplify_cfg once in
  Alcotest.(check int) "stable block count" (Ir.Cdfg.block_count once)
    (Ir.Cdfg.block_count twice)

let suite =
  [
    Alcotest.test_case "unreachable removed" `Quick test_unreachable_removed_after_folding;
    Alcotest.test_case "straight line collapses" `Quick test_straightline_collapses;
    Alcotest.test_case "loops preserved" `Quick test_loops_preserved;
    Alcotest.test_case "entry stays first" `Quick test_entry_stays_first;
    Alcotest.test_case "branch semantics" `Quick test_branch_semantics_after_cleanup;
    Alcotest.test_case "random semantics" `Quick test_random_semantics;
    Alcotest.test_case "idempotent" `Quick test_idempotent;
  ]
