(* Unit tests for the clean-up passes: constant folding, copy propagation,
   dead-code elimination, and their semantics preservation. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let compile_raw src = Driver.compile_exn ~simplify:false src

let out0 cdfg = (Interp.array_exn (Interp.run cdfg) "out").(0)

let test_const_fold_arithmetic () =
  let cdfg = compile_raw {|
int out[4];
void main() {
  int a = 3 + 4;
  int b = a * 10;
  out[0] = b - 5;
}
|} in
  let folded = Ir.Passes.simplify cdfg in
  Alcotest.(check int) "value preserved" 65 (out0 folded);
  (* after folding + DCE the entry block should be a couple of stores of
     constants at most *)
  let instrs = Ir.Cdfg.total_instrs folded in
  Alcotest.(check bool)
    (Printf.sprintf "program shrank to %d instrs" instrs)
    true (instrs <= 2)

let test_const_fold_branch () =
  let cdfg = compile_raw {|
int out[4];
void main() {
  if (2 > 1) {
    out[0] = 111;
  } else {
    out[0] = 222;
  }
}
|} in
  let folded = Ir.Passes.const_fold cdfg in
  (* the branch became a jump: no Branch terminator on a constant *)
  let has_const_branch =
    Array.exists
      (fun (b : Ir.Block.t) ->
        match b.term with
        | Ir.Block.Branch { cond = Ir.Instr.Imm _; _ } -> true
        | Ir.Block.Branch _ | Ir.Block.Jump _ | Ir.Block.Return _ -> false)
      (Ir.Cfg.blocks (Ir.Cdfg.cfg folded))
  in
  Alcotest.(check bool) "no constant-condition branch left" false has_const_branch;
  Alcotest.(check int) "semantics preserved" 111 (out0 folded)

let test_division_not_folded_unsafely () =
  let cdfg = compile_raw {|
int out[4];
void main() {
  int a = 10 / 2;
  out[0] = a;
}
|} in
  let folded = Ir.Passes.simplify cdfg in
  Alcotest.(check int) "constant division folded" 5 (out0 folded)

let test_copy_propagation () =
  let cdfg = compile_raw {|
int out[4];
int in[4];
void main() {
  int a = in[0];
  int b = a;
  int c = b;
  out[0] = c + c;
}
|} in
  let simplified = Ir.Passes.simplify cdfg in
  let run cdfg =
    (Interp.array_exn (Interp.run ~inputs:[ ("in", [| 21 |]) ] cdfg) "out").(0)
  in
  Alcotest.(check int) "before" 42 (run cdfg);
  Alcotest.(check int) "after" 42 (run simplified);
  Alcotest.(check bool) "fewer instructions" true
    (Ir.Cdfg.total_instrs simplified < Ir.Cdfg.total_instrs cdfg)

let test_dce_keeps_stores () =
  let cdfg = compile_raw {|
int out[4];
void main() {
  int unused = 5 * 5;
  out[1] = 9;
}
|} in
  let cleaned = Ir.Passes.dead_code_eliminate (Ir.Passes.const_fold cdfg) in
  let r = Interp.run cleaned in
  Alcotest.(check int) "store survives" 9 (Interp.array_exn r "out").(1)

let test_dce_removes_dead_load () =
  let cdfg = compile_raw {|
int out[4];
int in[4];
void main() {
  int dead = in[2];
  out[0] = 1;
}
|} in
  let cleaned = Ir.Passes.simplify cdfg in
  let loads =
    Array.fold_left
      (fun acc (bi : Ir.Cdfg.block_info) ->
        acc
        + List.length (List.filter Ir.Instr.is_load bi.block.Ir.Block.instrs))
      0 (Ir.Cdfg.infos cleaned)
  in
  Alcotest.(check int) "dead load removed" 0 loads

let test_simplify_idempotent () =
  let src = Hypar_apps.Synth.random_structured_main ~seed:5 ~depth:3 () in
  let cdfg = compile_raw src in
  let s1 = Ir.Passes.simplify cdfg in
  let s2 = Ir.Passes.simplify s1 in
  Alcotest.(check int) "same size after second round"
    (Ir.Cdfg.total_instrs s1) (Ir.Cdfg.total_instrs s2)

let test_semantics_preserved_random () =
  (* run 12 random programs through the passes and compare results *)
  for seed = 1 to 12 do
    let src = Hypar_apps.Synth.random_straightline_main ~seed ~ops:40 () in
    let raw = compile_raw src in
    let simplified = Ir.Passes.simplify raw in
    Alcotest.(check int)
      (Printf.sprintf "seed %d" seed)
      (out0 raw) (out0 simplified)
  done

let suite =
  [
    Alcotest.test_case "const fold arithmetic" `Quick test_const_fold_arithmetic;
    Alcotest.test_case "const fold branch" `Quick test_const_fold_branch;
    Alcotest.test_case "constant division" `Quick test_division_not_folded_unsafely;
    Alcotest.test_case "copy propagation" `Quick test_copy_propagation;
    Alcotest.test_case "DCE keeps stores" `Quick test_dce_keeps_stores;
    Alcotest.test_case "DCE removes dead loads" `Quick test_dce_removes_dead_load;
    Alcotest.test_case "simplify idempotent" `Quick test_simplify_idempotent;
    Alcotest.test_case "random semantics preserved" `Quick test_semantics_preserved_random;
  ]
