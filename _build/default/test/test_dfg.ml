(* Unit tests for the per-block data-flow graph: dependence edges, ASAP/ALAP
   levelling, live-ins and memory ordering. *)

module Ir = Hypar_ir

(* A chain: t0 = a+1; t1 = t0*2; t2 = t1-3. *)
let chain_dfg () =
  Ir.Builder.dfg_of (fun b ->
      let a = Ir.Builder.fresh_var b "a" in
      let t0 = Ir.Builder.bin b Ir.Types.Add "t0" (Ir.Builder.var a) (Ir.Builder.imm 1) in
      let t1 = Ir.Builder.mul b "t1" (Ir.Builder.var t0) (Ir.Builder.imm 2) in
      ignore (Ir.Builder.bin b Ir.Types.Sub "t2" (Ir.Builder.var t1) (Ir.Builder.imm 3)))

let test_chain_levels () =
  let d = chain_dfg () in
  Alcotest.(check int) "3 nodes" 3 (Ir.Dfg.node_count d);
  Alcotest.(check (list int)) "asap" [ 1; 2; 3 ] (Array.to_list (Ir.Dfg.asap d));
  Alcotest.(check (list int)) "alap" [ 1; 2; 3 ] (Array.to_list (Ir.Dfg.alap d));
  Alcotest.(check (list int)) "zero slack" [ 0; 0; 0 ] (Array.to_list (Ir.Dfg.slack d));
  Alcotest.(check int) "critical path" 3 (Ir.Dfg.critical_path d);
  Alcotest.(check int) "max level" 3 (Ir.Dfg.max_level d)

let test_parallel_levels () =
  (* Two independent ops then a combiner: diamond of depth 2. *)
  let d =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        let t0 = Ir.Builder.bin b Ir.Types.Add "t0" (Ir.Builder.var x) (Ir.Builder.imm 1) in
        let t1 = Ir.Builder.bin b Ir.Types.Sub "t1" (Ir.Builder.var x) (Ir.Builder.imm 2) in
        ignore (Ir.Builder.bin b Ir.Types.And "t2" (Ir.Builder.var t0) (Ir.Builder.var t1)))
  in
  Alcotest.(check (list int)) "asap" [ 1; 1; 2 ] (Array.to_list (Ir.Dfg.asap d));
  Alcotest.(check (list int)) "level 1 nodes" [ 0; 1 ] (Ir.Dfg.nodes_at_level d 1);
  Alcotest.(check (list int)) "level 2 nodes" [ 2 ] (Ir.Dfg.nodes_at_level d 2)

let test_war_waw_edges () =
  (* x = a + 1 (def x); y = x + 1 (use x); x = 2 (WAW with def1, WAR with use) *)
  let d =
    Ir.Builder.dfg_of (fun b ->
        let a = Ir.Builder.fresh_var b "a" in
        let x = Ir.Builder.fresh_var b "x" in
        Ir.Builder.emit b
          (Ir.Instr.Bin { dst = x; op = Ir.Types.Add; a = Var a; b = Imm 1 });
        ignore (Ir.Builder.bin b Ir.Types.Add "y" (Ir.Builder.var x) (Ir.Builder.imm 1));
        Ir.Builder.emit b (Ir.Instr.Mov { dst = x; src = Imm 2 }))
  in
  (* node 2 (redefinition of x) must come after node 0 (WAW) and node 1 (WAR) *)
  Alcotest.(check (list int)) "preds of redefinition" [ 0; 1 ] (Ir.Dfg.preds d 2);
  Alcotest.(check int) "asap of redefinition" 3 (Ir.Dfg.asap d).(2)

let test_memory_edges () =
  (* store m[0]; load m[1]; store m[2]  — load depends on first store,
     second store depends on first store and the load. *)
  let d =
    Ir.Builder.dfg_of (fun b ->
        Ir.Builder.store b ~arr:"m" (Ir.Builder.imm 0) (Ir.Builder.imm 1);
        ignore (Ir.Builder.load b "t" ~arr:"m" (Ir.Builder.imm 1));
        Ir.Builder.store b ~arr:"m" (Ir.Builder.imm 2) (Ir.Builder.imm 3))
  in
  Alcotest.(check (list int)) "load after store" [ 0 ] (Ir.Dfg.preds d 1);
  Alcotest.(check (list int)) "store after store+load" [ 0; 1 ] (Ir.Dfg.preds d 2)

let test_independent_arrays () =
  let d =
    Ir.Builder.dfg_of (fun b ->
        Ir.Builder.store b ~arr:"m1" (Ir.Builder.imm 0) (Ir.Builder.imm 1);
        Ir.Builder.store b ~arr:"m2" (Ir.Builder.imm 0) (Ir.Builder.imm 2))
  in
  Alcotest.(check (list int)) "different arrays are independent" []
    (Ir.Dfg.preds d 1)

let test_live_ins () =
  let d = chain_dfg () in
  let live = Ir.Dfg.live_in_vars d in
  Alcotest.(check (list string)) "only a is live-in" [ "a" ]
    (List.map (fun (v : Ir.Instr.var) -> v.vname) live)

let test_op_counts () =
  let d = chain_dfg () in
  let counts = Ir.Dfg.op_counts d in
  Alcotest.(check int) "alu count" 2 (List.assoc Ir.Types.Class_alu counts);
  Alcotest.(check int) "mul count" 1 (List.assoc Ir.Types.Class_mul counts);
  Alcotest.(check int) "mem count" 0 (List.assoc Ir.Types.Class_mem counts)

let test_empty () =
  let d = Ir.Dfg.of_instrs [] in
  Alcotest.(check int) "no nodes" 0 (Ir.Dfg.node_count d);
  Alcotest.(check int) "max level 0" 0 (Ir.Dfg.max_level d);
  Alcotest.(check bool) "well-formed" true (Ir.Dfg.is_well_formed d)

let test_well_formed () =
  let d = Hypar_apps.Synth.random_dfg ~seed:3 ~nodes:200 () in
  Alcotest.(check bool) "random DFG well-formed" true (Ir.Dfg.is_well_formed d);
  let asap = Ir.Dfg.asap d and alap = Ir.Dfg.alap d in
  Array.iteri
    (fun i a -> if a > alap.(i) then Alcotest.fail "asap exceeds alap")
    asap

let suite =
  [
    Alcotest.test_case "chain levels" `Quick test_chain_levels;
    Alcotest.test_case "parallel levels" `Quick test_parallel_levels;
    Alcotest.test_case "WAR/WAW edges" `Quick test_war_waw_edges;
    Alcotest.test_case "memory ordering edges" `Quick test_memory_edges;
    Alcotest.test_case "independent arrays" `Quick test_independent_arrays;
    Alcotest.test_case "live-ins" `Quick test_live_ins;
    Alcotest.test_case "op counts" `Quick test_op_counts;
    Alcotest.test_case "empty DFG" `Quick test_empty;
    Alcotest.test_case "random DFG well-formed" `Quick test_well_formed;
  ]
