(* Unit tests for the shared-memory communication model. *)

module Ir = Hypar_ir
module Comm = Hypar_core.Comm
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let loop_cdfg () =
  Driver.compile_exn {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 20; i = i + 1) {
    s = s + i;
  }
  out[0] = s;
}
|}

let body_block cdfg =
  match
    List.find_opt
      (fun i -> (Ir.Cdfg.info cdfg i).Ir.Cdfg.loop_depth > 0)
      (Ir.Cdfg.block_ids cdfg)
  with
  | Some i -> i
  | None -> Alcotest.fail "no loop body"

let test_model_validation () =
  (match Comm.make ~ports:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ports=0 must be rejected");
  let m = Comm.make ~cycles_per_word:2 ~ports:4 ~fixed_overhead:1 () in
  Alcotest.(check int) "fields" 2 m.Comm.cycles_per_word

let test_block_words () =
  let cdfg = loop_cdfg () in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let body = body_block cdfg in
  (* the rotated loop body reads and republishes s and i: 2 in + 2 out *)
  Alcotest.(check int) "live words" 4 (Comm.block_words live body)

let test_block_cycles () =
  let cdfg = loop_cdfg () in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let body = body_block cdfg in
  let m = Comm.make ~cycles_per_word:1 ~ports:2 ~fixed_overhead:4 () in
  (* 4 words on 2 ports = 2 cycles, + 4 overhead *)
  Alcotest.(check int) "per-invocation cost" 6 (Comm.block_cycles m live body)

let test_per_invocation_total () =
  let cdfg = loop_cdfg () in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let body = body_block cdfg in
  let m = Comm.default in
  let per = Comm.block_cycles m live body in
  Alcotest.(check int) "freq-weighted"
    (per * 20)
    (Comm.total_cycles m live ~freq:(fun _ -> 20) ~moved:[ body ])

let test_transition_self_loop_free () =
  let cdfg = loop_cdfg () in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let r = Interp.run cdfg in
  let body = body_block cdfg in
  let on_cgc i = i = body in
  let cost =
    Comm.transition_cycles Comm.default live ~edges:r.Interp.edge_freq ~on_cgc
  in
  (* entering once and leaving once: far below 20 invocations' worth *)
  let per_inv = Comm.block_cycles Comm.default live body in
  Alcotest.(check bool)
    (Printf.sprintf "transition cost %d < per-invocation cost %d" cost (per_inv * 20))
    true
    (cost < per_inv * 20);
  Alcotest.(check bool) "still non-zero" true (cost > 0)

let test_transition_no_moves_is_free () =
  let cdfg = loop_cdfg () in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let r = Interp.run cdfg in
  Alcotest.(check int) "no crossing, no cost" 0
    (Comm.transition_cycles Comm.default live ~edges:r.Interp.edge_freq
       ~on_cgc:(fun _ -> false));
  Alcotest.(check int) "everything coarse, no cost" 0
    (Comm.transition_cycles Comm.default live ~edges:r.Interp.edge_freq
       ~on_cgc:(fun _ -> true))

let test_transition_counts_both_directions () =
  let cdfg = loop_cdfg () in
  let live = Ir.Live.analyse (Ir.Cdfg.cfg cdfg) in
  let body = body_block cdfg in
  let edges = [ ((0, body), 5); ((body, 0), 5) ] in
  let m = Comm.make ~cycles_per_word:0 ~ports:1 ~fixed_overhead:1 () in
  (* overhead only: 10 crossings *)
  Alcotest.(check int) "10 crossings x overhead 1" 10
    (Comm.transition_cycles m live ~edges ~on_cgc:(fun i -> i = body))

let suite =
  [
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "block words" `Quick test_block_words;
    Alcotest.test_case "block cycles" `Quick test_block_cycles;
    Alcotest.test_case "per-invocation total" `Quick test_per_invocation_total;
    Alcotest.test_case "self-loop transitions free" `Quick test_transition_self_loop_free;
    Alcotest.test_case "no moves, no cost" `Quick test_transition_no_moves_is_free;
    Alcotest.test_case "both directions priced" `Quick test_transition_counts_both_directions;
  ]
