(* Unit tests for the kernel-selection baselines and the temporal
   partitioning baseline. *)

module Ir = Hypar_ir
module Baselines = Hypar_core.Baselines
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Flow = Hypar_core.Flow
module Temporal = Hypar_finegrain.Temporal
module Fpga = Hypar_finegrain.Fpga

let platform () = List.hd (Platform.paper_configs ())

let prepared = lazy (Flow.prepare ~name:"two-loops" {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 4000; i = i + 1) {
    s = s + i * i;
  }
  int j;
  for (j = 0; j < 900; j = j + 1) {
    s = s + (j << 2) - 1;
  }
  out[0] = s;
}
|})

let budget prepared =
  let e = Engine.evaluate (platform ()) prepared.Flow.cdfg prepared.Flow.profile in
  (e []).Engine.t_total / 2

let test_paper_greedy_matches_engine () =
  let p = Lazy.force prepared in
  let timing_constraint = budget p in
  let engine = Flow.partition (platform ()) ~timing_constraint p in
  let baseline =
    Baselines.run (platform ()) ~timing_constraint p.Flow.cdfg p.Flow.profile
      Baselines.Paper_greedy
  in
  Alcotest.(check (list int)) "same moved set" engine.Engine.moved
    baseline.Baselines.moved;
  Alcotest.(check int) "same final total" engine.Engine.final.Engine.t_total
    baseline.Baselines.t_total

let test_exhaustive_no_worse_than_greedy () =
  let p = Lazy.force prepared in
  let timing_constraint = budget p in
  let run s = Baselines.run (platform ()) ~timing_constraint p.Flow.cdfg p.Flow.profile s in
  let greedy = run Baselines.Paper_greedy in
  let optimal = run (Baselines.Exhaustive 10) in
  Alcotest.(check bool) "both met" true (greedy.Baselines.met && optimal.Baselines.met);
  Alcotest.(check bool) "optimal needs <= moves" true
    (List.length optimal.Baselines.moved <= List.length greedy.Baselines.moved)

let test_random_is_met_eventually () =
  let p = Lazy.force prepared in
  let timing_constraint = budget p in
  let r =
    Baselines.run (platform ()) ~timing_constraint p.Flow.cdfg p.Flow.profile
      (Baselines.Random_order 7)
  in
  Alcotest.(check bool) "random order still converges" true r.Baselines.met

let test_compare_all () =
  let p = Lazy.force prepared in
  let timing_constraint = budget p in
  let outcomes =
    Baselines.compare_all (platform ()) ~timing_constraint p.Flow.cdfg
      p.Flow.profile
  in
  Alcotest.(check int) "five strategies" 5 (List.length outcomes);
  List.iter
    (fun (o : Baselines.outcome) ->
      Alcotest.(check bool) (o.name ^ " evaluations counted") true
        (o.evaluations > 0))
    outcomes

let test_exhaustive_cap () =
  (* a program with 22 distinct loop kernels trips the top-20 cap *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "int out[1];\nvoid main() {\n  int s = 0;\n";
  for k = 0 to 21 do
    Buffer.add_string buf
      (Printf.sprintf
         "  int i%d;\n  for (i%d = 0; i%d < %d; i%d = i%d + 1) { s = s + i%d * %d; }\n"
         k k k (10 + k) k k k (k + 1))
  done;
  Buffer.add_string buf "  out[0] = s;\n}\n";
  let p = Flow.prepare ~name:"many-loops" (Buffer.contents buf) in
  (match
     Baselines.run (platform ()) ~timing_constraint:1 p.Flow.cdfg p.Flow.profile
       (Baselines.Exhaustive 25)
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected top-20 cap");
  (* but asking for fewer than 20 of them is fine *)
  let o =
    Baselines.run (platform ()) ~timing_constraint:1 p.Flow.cdfg p.Flow.profile
      (Baselines.Exhaustive 8)
  in
  Alcotest.(check bool) "bounded search ran" true (o.Baselines.evaluations = 256)

(* --- temporal baseline -------------------------------------------------- *)

let test_backfill_no_worse () =
  for seed = 1 to 10 do
    let dfg = Hypar_apps.Synth.random_dfg ~seed ~nodes:120 () in
    let fpga = Fpga.make ~area:1500 () in
    let size = Fpga.op_area fpga in
    let paper = Temporal.partition ~area:1500 ~size dfg in
    let bf = Temporal.partition_best_fit ~area:1500 ~size dfg in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: backfill %d <= paper %d" seed
         (Temporal.count bf) (Temporal.count paper))
      true
      (Temporal.count bf <= Temporal.count paper);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: backfill respects dependences" seed)
      true (Temporal.is_valid dfg bf)
  done

let test_backfill_area_bound () =
  let dfg = Hypar_apps.Synth.random_dfg ~seed:31 ~nodes:100 () in
  let fpga = Fpga.make ~area:800 () in
  let bf = Temporal.partition_best_fit ~area:800 ~size:(Fpga.op_area fpga) dfg in
  List.iter
    (fun (p : Temporal.partition) ->
      Alcotest.(check bool) "area respected (or one oversized node)" true
        (p.area_used <= 800 || List.length p.node_ids = 1))
    bf.Temporal.partitions

let test_backfill_strictly_better_sometimes () =
  (* alternating big/small independent nodes: Figure 3 never returns to a
     partly filled partition, backfill does.  Sizes: mul 120, alu 60,
     area 130 -> Figure 3 opens 4 partitions, backfill only 3. *)
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        ignore (Ir.Builder.mul b "m1" (Ir.Builder.var x) (Ir.Builder.imm 3));
        ignore (Ir.Builder.bin b Ir.Types.Add "a1" (Ir.Builder.var x) (Ir.Builder.imm 1));
        ignore (Ir.Builder.mul b "m2" (Ir.Builder.var x) (Ir.Builder.imm 5));
        ignore (Ir.Builder.bin b Ir.Types.Add "a2" (Ir.Builder.var x) (Ir.Builder.imm 2)))
  in
  let size instr =
    match Ir.Instr.op_class instr with
    | Ir.Types.Class_mul -> 120
    | Ir.Types.Class_alu | Ir.Types.Class_div | Ir.Types.Class_mem
    | Ir.Types.Class_move ->
      60
  in
  let paper = Temporal.partition ~area:130 ~size dfg in
  let bf = Temporal.partition_best_fit ~area:130 ~size dfg in
  Alcotest.(check int) "Figure 3 opens 4 partitions" 4 (Temporal.count paper);
  Alcotest.(check int) "backfill packs into 3" 3 (Temporal.count bf)

let suite =
  [
    Alcotest.test_case "paper greedy = engine" `Quick test_paper_greedy_matches_engine;
    Alcotest.test_case "exhaustive no worse" `Quick test_exhaustive_no_worse_than_greedy;
    Alcotest.test_case "random converges" `Quick test_random_is_met_eventually;
    Alcotest.test_case "compare_all" `Quick test_compare_all;
    Alcotest.test_case "exhaustive cap" `Quick test_exhaustive_cap;
    Alcotest.test_case "backfill no worse" `Quick test_backfill_no_worse;
    Alcotest.test_case "backfill area bound" `Quick test_backfill_area_bound;
    Alcotest.test_case "backfill strictly better" `Quick test_backfill_strictly_better_sometimes;
  ]

let adpcm_platform = platform

let test_loop_greedy_on_branchy_kernel () =
  (* the ADPCM loop spans many blocks: moving it whole avoids intra-loop
     fine/coarse transitions and beats per-block greedy by a wide margin *)
  let p = Hypar_apps.Adpcm.prepared () in
  let timing_constraint = Hypar_apps.Adpcm.timing_constraint in
  let run s =
    Baselines.run (adpcm_platform ()) ~timing_constraint
      p.Flow.cdfg p.Flow.profile s
  in
  let per_block = run Baselines.Paper_greedy in
  let whole_loop = run Baselines.Loop_greedy in
  Alcotest.(check bool) "both met" true
    (per_block.Baselines.met && whole_loop.Baselines.met);
  Alcotest.(check bool)
    (Printf.sprintf "loop greedy final %d < per-block final %d"
       whole_loop.Baselines.t_total per_block.Baselines.t_total)
    true
    (whole_loop.Baselines.t_total < per_block.Baselines.t_total);
  Alcotest.(check bool) "fewer evaluations" true
    (whole_loop.Baselines.evaluations <= per_block.Baselines.evaluations)

let test_loop_greedy_single_block_loops () =
  (* on single-block kernels, loop greedy degenerates to per-loop = per
     block and still converges *)
  let p = Lazy.force prepared in
  let timing_constraint = budget p in
  let r =
    Baselines.run (platform ()) ~timing_constraint p.Flow.cdfg p.Flow.profile
      Baselines.Loop_greedy
  in
  Alcotest.(check bool) "met" true r.Baselines.met

let extra_suite =
  [
    Alcotest.test_case "loop greedy on ADPCM" `Quick test_loop_greedy_on_branchy_kernel;
    Alcotest.test_case "loop greedy degenerate" `Quick test_loop_greedy_single_block_loops;
  ]

let suite = suite @ extra_suite
