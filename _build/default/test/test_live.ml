(* Unit tests for global scalar liveness. *)

module Ir = Hypar_ir

let names vars = List.map (fun (v : Ir.Instr.var) -> v.vname) vars

(* entry: x = 1; y = 2; branch -> a / b
   a: z = x + 1; jump exit
   b: z = y + 2; jump exit
   exit: return z *)
let cfg_with_vars () =
  let mk name id = { Ir.Instr.vname = name; vid = id; vwidth = 16 } in
  let x = mk "x" 0 and y = mk "y" 1 and z = mk "z" 2 and c = mk "c" 3 in
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:
        [
          Ir.Instr.Mov { dst = x; src = Imm 1 };
          Ir.Instr.Mov { dst = y; src = Imm 2 };
          Ir.Instr.Bin { dst = c; op = Ir.Types.Lt; a = Var x; b = Var y };
        ]
      ~term:(Ir.Block.Branch { cond = Var c; if_true = "a"; if_false = "b" })
  in
  let a =
    Ir.Block.make ~label:"a"
      ~instrs:[ Ir.Instr.Bin { dst = z; op = Ir.Types.Add; a = Var x; b = Imm 1 } ]
      ~term:(Ir.Block.Jump "exit")
  in
  let b =
    Ir.Block.make ~label:"b"
      ~instrs:[ Ir.Instr.Bin { dst = z; op = Ir.Types.Add; a = Var y; b = Imm 2 } ]
      ~term:(Ir.Block.Jump "exit")
  in
  let exit_b =
    Ir.Block.make ~label:"exit" ~instrs:[] ~term:(Ir.Block.Return (Some (Var z)))
  in
  Ir.Cfg.of_blocks [ entry; a; b; exit_b ]

let test_branch_liveness () =
  let cfg = cfg_with_vars () in
  let live = Ir.Live.analyse cfg in
  Alcotest.(check (list string)) "nothing live into entry" []
    (names (Ir.Live.live_in live 0));
  Alcotest.(check (list string)) "x and y live out of entry" [ "x"; "y" ]
    (names (Ir.Live.live_out live 0));
  Alcotest.(check (list string)) "x live into a" [ "x" ]
    (names (Ir.Live.live_in live 1));
  Alcotest.(check (list string)) "z live out of a" [ "z" ]
    (names (Ir.Live.live_out live 1));
  Alcotest.(check (list string)) "z live into exit (terminator use)" [ "z" ]
    (names (Ir.Live.live_in live 3))

let test_defs_live_out () =
  let cfg = cfg_with_vars () in
  let live = Ir.Live.analyse cfg in
  (* entry defines x, y, c; only x and y survive (c is consumed by the
     entry's own terminator) *)
  Alcotest.(check (list string)) "published defs of entry" [ "x"; "y" ]
    (names (Ir.Live.defs_live_out live 0));
  Alcotest.(check (list string)) "published defs of a" [ "z" ]
    (names (Ir.Live.defs_live_out live 1))

let test_loop_liveness () =
  (* s accumulates in a rotated loop: s must be live around the back edge *)
  let cdfg =
    Hypar_minic.Driver.compile_exn
      {|
int out[4];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    s = s + i;
  }
  out[0] = s;
}
|}
  in
  let cfg = Ir.Cdfg.cfg cdfg in
  let live = Ir.Live.analyse cfg in
  let body =
    (* the single block inside a loop *)
    match
      List.find_opt
        (fun i -> (Ir.Loop.depth_map cfg).(i) > 0)
        (Ir.Cdfg.block_ids cdfg)
    with
    | Some i -> i
    | None -> Alcotest.fail "no loop body found"
  in
  let live_in = names (Ir.Live.live_in live body) in
  Alcotest.(check bool) "s live into loop body" true
    (List.exists (fun n -> String.length n >= 1 && n.[0] = 's') live_in)

let test_use_set () =
  let cfg = cfg_with_vars () in
  Alcotest.(check (list string)) "upward-exposed uses of a" [ "x" ]
    (names (Ir.Live.use_set cfg 1));
  Alcotest.(check (list string)) "entry has no upward-exposed uses" []
    (names (Ir.Live.use_set cfg 0))

let suite =
  [
    Alcotest.test_case "branch liveness" `Quick test_branch_liveness;
    Alcotest.test_case "defs live out" `Quick test_defs_live_out;
    Alcotest.test_case "loop liveness" `Quick test_loop_liveness;
    Alcotest.test_case "use sets" `Quick test_use_set;
  ]
