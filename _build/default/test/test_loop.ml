(* Unit tests for natural-loop detection and nesting depth. *)

module Ir = Hypar_ir

let block label ~term = Ir.Block.make ~label ~instrs:[] ~term
let jump l = Ir.Block.Jump l
let ret = Ir.Block.Return None

let branch l1 l2 =
  Ir.Block.Branch { cond = Ir.Instr.Imm 1; if_true = l1; if_false = l2 }

(* entry -> outer; outer -> (inner_pre | exit); inner_pre -> inner;
   inner -> (inner | outer_latch); outer_latch -> outer *)
let nested () =
  Ir.Cfg.of_blocks
    [
      block "entry" ~term:(jump "outer");
      block "outer" ~term:(branch "inner_pre" "exit");
      block "inner_pre" ~term:(jump "inner");
      block "inner" ~term:(branch "inner" "outer_latch");
      block "outer_latch" ~term:(jump "outer");
      block "exit" ~term:ret;
    ]

let test_single_loop () =
  let cfg =
    Ir.Cfg.of_blocks
      [
        block "entry" ~term:(jump "h");
        block "h" ~term:(branch "b" "x");
        block "b" ~term:(jump "h");
        block "x" ~term:ret;
      ]
  in
  match Ir.Loop.find cfg with
  | [ l ] ->
    Alcotest.(check int) "header" 1 l.Ir.Loop.header;
    Alcotest.(check (list int)) "latches" [ 2 ] l.Ir.Loop.latches;
    Alcotest.(check (list int)) "body" [ 1; 2 ] l.Ir.Loop.body
  | other -> Alcotest.failf "expected one loop, got %d" (List.length other)

let test_nested_loops () =
  let cfg = nested () in
  let loops = Ir.Loop.find cfg in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let depth = Ir.Loop.depth_map cfg in
  Alcotest.(check int) "entry depth" 0 depth.(0);
  Alcotest.(check int) "outer header depth" 1 depth.(1);
  Alcotest.(check int) "inner body depth" 2 depth.(3);
  Alcotest.(check int) "exit depth" 0 depth.(5);
  Alcotest.(check bool) "in_loop inner" true (Ir.Loop.in_loop cfg 3);
  Alcotest.(check bool) "in_loop exit" false (Ir.Loop.in_loop cfg 5)

let test_merged_latches () =
  (* two back edges to the same header form one loop *)
  let cfg =
    Ir.Cfg.of_blocks
      [
        block "entry" ~term:(jump "h");
        block "h" ~term:(branch "b1" "x");
        block "b1" ~term:(branch "h" "b2");
        block "b2" ~term:(jump "h");
        block "x" ~term:ret;
      ]
  in
  match Ir.Loop.find cfg with
  | [ l ] ->
    Alcotest.(check (list int)) "merged latches" [ 2; 3 ] l.Ir.Loop.latches;
    Alcotest.(check (list int)) "merged body" [ 1; 2; 3 ] l.Ir.Loop.body
  | other -> Alcotest.failf "expected one merged loop, got %d" (List.length other)

let test_rotated_minic_loops () =
  (* Lowered rotated loops: a for inside a for gives two natural loops. *)
  let cdfg =
    Hypar_minic.Driver.compile_exn ~name:"loops"
      {|
int out[4];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    int j;
    for (j = 0; j < 5; j = j + 1) {
      s = s + i * j;
    }
  }
  out[0] = s;
}
|}
  in
  let cfg = Hypar_ir.Cdfg.cfg cdfg in
  Alcotest.(check int) "two natural loops" 2 (List.length (Ir.Loop.find cfg));
  let max_depth =
    Array.fold_left max 0 (Ir.Loop.depth_map cfg)
  in
  Alcotest.(check int) "nesting depth two" 2 max_depth

let suite =
  [
    Alcotest.test_case "single loop" `Quick test_single_loop;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "merged latches" `Quick test_merged_latches;
    Alcotest.test_case "rotated Mini-C loops" `Quick test_rotated_minic_loops;
  ]
