The hypar CLI end to end on a small FIR kernel.

Kernel analysis (Table-1 style):

  $ hypar analyze fir.mc --top 3
  fir.mc
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                2 |         448 |                 8 |         3584
                3 |          56 |                 4 |          224
                1 |          56 |                 2 |          112

Partitioning against a tight constraint moves the inner loop:

  $ hypar partition fir.mc -t 8000
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057  [met]
    met after 1 movement(s)
    reduction: 74.6%

An infeasible constraint exits non-zero:

  $ hypar partition fir.mc -t 1
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 1):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057
    step 2: move BB3 -> t_fpga=1425 t_coarse=504 (=1512 CGC cycles) t_comm=616 t_total=2545
    step 3: move BB1 -> t_fpga=25 t_coarse=523 (=1568 CGC cycles) t_comm=10 t_total=558
    INFEASIBLE
    reduction: 96.5%
  [1]

The CFG export is valid DOT:

  $ hypar dot fir.mc | head -3
  digraph cfg {
    node [shape=box fontname="monospace"];
    n0 [label="BB0 entry\n1 instrs"];

The IR dump round-trips through any subcommand:

  $ hypar dump fir.mc > fir.ir
  $ hypar analyze fir.ir --top 1
  fir.ir
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                2 |         448 |                 8 |         3584

Value-range analysis flags the genuine width hazards (the int16 MAC
accumulator) and proves the loop counters:

  $ hypar ranges fir.mc
  s__2#2 width=16 inferred=[-35184372088832, 35184372088832] declared=[-32768, 32767] OVERFLOW RISK
  t#10 width=16 inferred=[-549755813888, 549755813888] declared=[-32768, 32767] OVERFLOW RISK

Baselines compare the paper's greedy against alternatives:

  $ hypar baselines fir.mc -t 8000
  strategy                       moves            final    met    evals
  paper greedy (Eq.1 weight)         1             4057   true        2
  benefit greedy                     1             4057   true        5
  loop greedy (whole loops)          1             4057   true        2
  random order (seed 1)              1             4057   true        2
  exhaustive (top 12)                1             4057   true        8

The design-space sweep covers an A_FPGA x CGC grid:

  $ hypar sweep fir.mc -t 8000 | head -4
    A_FPGA       CGCs          initial            final  reduction   moved
       500    one 2x2            26737             4057      84.8%       1
       500    two 2x2            26737             4057      84.8%       1
       500  three 2x2            26737             4057      84.8%       1
