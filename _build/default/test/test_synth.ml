(* Sanity tests for the synthetic workload generators. *)

module Ir = Hypar_ir
module Synth = Hypar_apps.Synth
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let test_random_dfg_determinism () =
  let d1 = Synth.random_dfg ~seed:42 ~nodes:50 () in
  let d2 = Synth.random_dfg ~seed:42 ~nodes:50 () in
  Alcotest.(check int) "same node count" (Ir.Dfg.node_count d1)
    (Ir.Dfg.node_count d2);
  Alcotest.(check (list int)) "same levels"
    (Array.to_list (Ir.Dfg.asap d1))
    (Array.to_list (Ir.Dfg.asap d2));
  let d3 = Synth.random_dfg ~seed:43 ~nodes:50 () in
  Alcotest.(check bool) "different seeds differ" true
    (Array.to_list (Ir.Dfg.asap d1) <> Array.to_list (Ir.Dfg.asap d3)
    || Ir.Dfg.op_counts d1 <> Ir.Dfg.op_counts d3)

let test_random_dfg_size () =
  List.iter
    (fun n ->
      let d = Synth.random_dfg ~seed:7 ~nodes:n () in
      (* stores pair with a mov, so node count >= requested *)
      Alcotest.(check bool)
        (Printf.sprintf "at least %d nodes" n)
        true
        (Ir.Dfg.node_count d >= n))
    [ 1; 10; 100 ]

let test_straightline_deterministic_and_runs () =
  let src1 = Synth.random_straightline_main ~seed:5 ~ops:30 () in
  let src2 = Synth.random_straightline_main ~seed:5 ~ops:30 () in
  Alcotest.(check string) "deterministic" src1 src2;
  let cdfg = Driver.compile_exn src1 in
  let r = Interp.run cdfg in
  Alcotest.(check bool) "terminates" true (r.Interp.instrs_executed > 0)

let test_structured_targets_depth () =
  let src = Synth.random_structured_main ~seed:3 ~depth:4 () in
  let cdfg = Driver.compile_exn ~simplify:false src in
  let cfg = Ir.Cdfg.cfg cdfg in
  Alcotest.(check bool) "has control flow" true (Ir.Cfg.block_count cfg > 3);
  (* bounded loops: execution terminates well within the fuel *)
  let r = Interp.run ~fuel:50_000_000 cdfg in
  Alcotest.(check bool) "terminates" true (r.Interp.instrs_executed > 0)

let test_matmul_identity () =
  (* multiplying by the identity matrix returns the input *)
  let n = 6 in
  let identity =
    Array.init (n * n) (fun i -> if i / n = i mod n then 1 else 0)
  in
  let a = Array.init (n * n) (fun i -> (i * 13 mod 61) - 30) in
  let cdfg = Driver.compile_exn (Synth.matmul_source ~n) in
  let r =
    Interp.run ~inputs:[ ("a", a); ("b", identity) ] cdfg
  in
  Alcotest.(check bool) "A x I = A" true (Interp.array_exn r "c" = a)

let test_fir_impulse_response () =
  (* an impulse input reproduces the (shifted, scaled) coefficients *)
  let taps = 8 and samples = 16 in
  let x = Array.make (samples + taps) 0 in
  x.(0) <- 256;
  let h = Array.init taps (fun i -> i + 1) in
  let cdfg = Driver.compile_exn (Synth.fir_source ~taps ~samples) in
  let r = Interp.run ~inputs:[ ("x", x); ("h", h) ] cdfg in
  let y = Interp.array_exn r "y" in
  (* y[i] = x[i+t]*h[t] summed = 256*h[-i]... only y[0] sees the impulse
     at t=0: y[0] = 256*h[0] >> 8 = 1 *)
  Alcotest.(check int) "impulse through tap 0" 1 y.(0);
  Alcotest.(check int) "silence after the impulse passes" 0 y.(8)

let suite =
  [
    Alcotest.test_case "random DFG determinism" `Quick test_random_dfg_determinism;
    Alcotest.test_case "random DFG sizes" `Quick test_random_dfg_size;
    Alcotest.test_case "straight-line programs" `Quick test_straightline_deterministic_and_runs;
    Alcotest.test_case "structured programs" `Quick test_structured_targets_depth;
    Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
    Alcotest.test_case "FIR impulse" `Quick test_fir_impulse_response;
  ]
