(* Unit tests for whole-program inlining. *)

module Ast = Hypar_minic.Ast
module Parser = Hypar_minic.Parser
module Typecheck = Hypar_minic.Typecheck
module Inline = Hypar_minic.Inline
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let inline_src src =
  let prog = Parser.parse_program src in
  Typecheck.check_exn prog;
  Inline.program prog

let run_out0 ?(inputs = []) src =
  let cdfg = Driver.compile_exn src in
  (Interp.array_exn (Interp.run ~inputs cdfg) "out").(0)

let test_scalar_call () =
  let v = run_out0 {|
int out[4];
int double_it(int x) { return x + x; }
void main() { out[0] = double_it(21); }
|} in
  Alcotest.(check int) "double(21)" 42 v

let test_nested_calls () =
  let v = run_out0 {|
int out[4];
int inc(int x) { return x + 1; }
int twice(int x) { return inc(inc(x)); }
void main() { out[0] = twice(inc(0)); }
|} in
  Alcotest.(check int) "three increments" 3 v

let test_call_in_expression () =
  let v = run_out0 {|
int out[4];
int sq(int x) { return x * x; }
void main() { out[0] = sq(3) + sq(4); }
|} in
  Alcotest.(check int) "9 + 16" 25 v

let test_array_parameter () =
  let v = run_out0 {|
int out[4];
int a[4];
int b[4];
void fill(int t[], int v) { t[0] = v; }
void main() {
  fill(a, 7);
  fill(b, 35);
  out[0] = a[0] + b[0];
}
|} in
  Alcotest.(check int) "array params substituted" 42 v

let test_void_call_statement () =
  let v = run_out0 {|
int out[4];
int acc;
void bump(int by) { acc = acc + by; }
void main() {
  acc = 0;
  bump(40);
  bump(2);
  out[0] = acc;
}
|} in
  Alcotest.(check int) "side effects accumulated" 42 v

let test_local_renaming () =
  (* the callee's local 'x' must not clobber the caller's 'x' *)
  let v = run_out0 {|
int out[4];
int f(int a) {
  int x = a * 10;
  return x;
}
void main() {
  int x = 2;
  int y = f(x);
  out[0] = x + y;
}
|} in
  Alcotest.(check int) "locals renamed apart" 22 v

let test_shadowing_in_main () =
  let v = run_out0 {|
int out[4];
void main() {
  int x = 1;
  if (x) {
    int y = 10;
    x = x + y;
  }
  int i;
  for (i = 0; i < 2; i = i + 1) {
    int y = 100;
    x = x + y;
  }
  out[0] = x;
}
|} in
  Alcotest.(check int) "sibling-scope locals renamed apart" 211 v

let test_call_inside_loop () =
  let v = run_out0 {|
int out[4];
int step(int s, int i) { return s + i * i; }
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 5; i = i + 1) {
    s = step(s, i);
  }
  out[0] = s;
}
|} in
  Alcotest.(check int) "sum of squares 0..4" 30 v

let test_recursion_rejected () =
  let src = {|
int out[4];
int f(int x) { return g(x); }
int g(int x) { return f(x); }
void main() { out[0] = f(1); }
|} in
  let prog = Parser.parse_program src in
  Typecheck.check_exn prog;
  match Inline.program prog with
  | exception Inline.Recursive name ->
    Alcotest.(check bool) "names a cycle member" true (name = "f" || name = "g")
  | _ -> Alcotest.fail "expected Recursive"

let test_only_main_remains () =
  let prog = inline_src {|
int out[4];
int f(int x) { return x; }
void main() { out[0] = f(1); }
|} in
  Alcotest.(check int) "single function" 1 (List.length prog.Ast.funcs);
  match prog.Ast.funcs with
  | [ f ] -> Alcotest.(check string) "it is main" "main" f.Ast.fname
  | _ -> Alcotest.fail "unexpected"

let suite =
  [
    Alcotest.test_case "scalar call" `Quick test_scalar_call;
    Alcotest.test_case "nested calls" `Quick test_nested_calls;
    Alcotest.test_case "call in expression" `Quick test_call_in_expression;
    Alcotest.test_case "array parameter" `Quick test_array_parameter;
    Alcotest.test_case "void call statement" `Quick test_void_call_statement;
    Alcotest.test_case "local renaming" `Quick test_local_renaming;
    Alcotest.test_case "shadowing in main" `Quick test_shadowing_in_main;
    Alcotest.test_case "call inside loop" `Quick test_call_inside_loop;
    Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
    Alcotest.test_case "only main remains" `Quick test_only_main_remains;
  ]
