(* Unit tests for the reconfiguration-time models on the FPGA device. *)

module Fpga = Hypar_finegrain.Fpga
module Fine_map = Hypar_finegrain.Fine_map
module Ir = Hypar_ir

let fp = Fpga.default_frame_params

let test_flat_ignores_area () =
  let fpga = Fpga.make ~area:1500 ~reconfig_cycles:24 () in
  Alcotest.(check int) "small partition" 24
    (Fpga.partition_reconfig_cycles fpga ~partition_area:10);
  Alcotest.(check int) "large partition" 24
    (Fpga.partition_reconfig_cycles fpga ~partition_area:1400)

let test_frame_full_constant () =
  let fpga = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_full fp) () in
  let c1 = Fpga.partition_reconfig_cycles fpga ~partition_area:10 in
  let c2 = Fpga.partition_reconfig_cycles fpga ~partition_area:1400 in
  Alcotest.(check int) "full-device cost independent of partition" c1 c2;
  (* 375 CLBs -> 24 columns of 16 = 384 configured CLBs:
     (256 + 384*64 + 16) / 64 = ceil(24848/64) = 389 *)
  Alcotest.(check int) "expected magnitude" 389 c1

let test_frame_partial_grows () =
  let fpga = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_partial fp) () in
  let small = Fpga.partition_reconfig_cycles fpga ~partition_area:16 in
  let large = Fpga.partition_reconfig_cycles fpga ~partition_area:1400 in
  Alcotest.(check bool)
    (Printf.sprintf "partial grows with area (%d < %d)" small large)
    true (small < large);
  let full = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_full fp) () in
  Alcotest.(check bool) "partial never exceeds full" true
    (large <= Fpga.partition_reconfig_cycles full ~partition_area:1400)

let test_partial_clamped_to_device () =
  let fpga = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_partial fp) () in
  let oversized = Fpga.partition_reconfig_cycles fpga ~partition_area:1_000_000 in
  let full = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_full fp) () in
  Alcotest.(check int) "clamped to the device size"
    (Fpga.partition_reconfig_cycles full ~partition_area:0)
    oversized

let test_fine_map_uses_model () =
  let dfg =
    Ir.Builder.dfg_of (fun b ->
        let x = Ir.Builder.fresh_var b "x" in
        for _ = 1 to 40 do
          ignore (Ir.Builder.bin b Ir.Types.Add "t" (Ir.Builder.var x) (Ir.Builder.imm 1))
        done)
  in
  let flat = Fpga.make ~area:1500 ~reconfig_cycles:24 () in
  let partial = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_partial fp) () in
  let m_flat = Fine_map.map_dfg flat dfg in
  let m_partial = Fine_map.map_dfg partial dfg in
  Alcotest.(check int) "same temporal partitioning"
    m_flat.Fine_map.partition_count m_partial.Fine_map.partition_count;
  Alcotest.(check int) "flat: partitions x constant"
    (m_flat.Fine_map.partition_count * 24)
    m_flat.Fine_map.reconfig_cycles;
  Alcotest.(check bool) "frame model produces larger costs" true
    (m_partial.Fine_map.reconfig_cycles > m_flat.Fine_map.reconfig_cycles)

let test_matches_bitstream_module () =
  (* Fpga's closed-form pricing agrees with generating an actual stream *)
  let fpga = Fpga.make ~area:1500 ~reconfig_model:(Fpga.Frame_full fp) () in
  let device = Hypar_finegrain.Bitstream.device_of_fpga fpga in
  let stream = Hypar_finegrain.Bitstream.generate_full device ~op_areas:[ 64 ] in
  Alcotest.(check int) "closed form = generated stream"
    (Hypar_finegrain.Bitstream.reconfig_cycles stream)
    (Fpga.partition_reconfig_cycles fpga ~partition_area:64)

let suite =
  [
    Alcotest.test_case "flat ignores area" `Quick test_flat_ignores_area;
    Alcotest.test_case "frame-full constant" `Quick test_frame_full_constant;
    Alcotest.test_case "frame-partial grows" `Quick test_frame_partial_grows;
    Alcotest.test_case "partial clamped" `Quick test_partial_clamped_to_device;
    Alcotest.test_case "fine map uses model" `Quick test_fine_map_uses_model;
    Alcotest.test_case "matches Bitstream" `Quick test_matches_bitstream_module;
  ]
