(* Unit tests for modulo scheduling (CGC loop pipelining). *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Modulo = Hypar_coarsegrain.Modulo
module Engine = Hypar_core.Engine
module Flow = Hypar_core.Flow
module Platform = Hypar_core.Platform

let cgc2 = Cgc.two_by_two 2

(* an accumulator kernel: s and i are loop-carried *)
let carried_dfg () =
  let b = Ir.Builder.create () in
  Ir.Builder.declare_array b "x" 64;
  let s = Ir.Builder.fresh_var b "s" in
  let i = Ir.Builder.fresh_var b "i" in
  let x = Ir.Builder.load b "x0" ~arr:"x" (Ir.Builder.var i) in
  let m = Ir.Builder.mul b "m" (Ir.Builder.var x) (Ir.Builder.var x) in
  Ir.Builder.emit b
    (Ir.Instr.Bin { dst = s; op = Ir.Types.Add; a = Var s; b = Var m });
  Ir.Builder.emit b
    (Ir.Instr.Bin { dst = i; op = Ir.Types.Add; a = Var i; b = Imm 1 });
  Ir.Builder.finish_block b ~label:"body" ~term:(Ir.Block.Return None);
  let cdfg = Ir.Builder.cdfg b in
  let dfg = (Ir.Cdfg.info cdfg 0).Ir.Cdfg.dfg in
  (dfg, s, i)

let test_bounds () =
  let dfg, s, i = carried_dfg () in
  match Modulo.analyse cgc2 dfg ~carried:[ s; i ] with
  | Some m ->
    Alcotest.(check bool) "II >= ResMII" true (m.Modulo.ii >= m.Modulo.res_mii);
    Alcotest.(check bool) "II <= latency" true (m.Modulo.ii <= m.Modulo.latency);
    Alcotest.(check bool) "ResMII at least 1" true (m.Modulo.res_mii >= 1);
    Alcotest.(check int) "both scalars recur" 2 (List.length m.Modulo.recurrences)
  | None -> Alcotest.fail "expected analysis"

let test_wide_kernel_pipelines_well () =
  (* many independent ops: ResMII small, latency larger -> II < latency *)
  let b = Ir.Builder.create () in
  let i = Ir.Builder.fresh_var b "i" in
  let prev = ref (Ir.Builder.var i) in
  for _ = 1 to 12 do
    let v = Ir.Builder.bin b Ir.Types.Add "t" !prev (Ir.Builder.imm 1) in
    prev := Ir.Builder.var v
  done;
  Ir.Builder.emit b
    (Ir.Instr.Bin { dst = i; op = Ir.Types.Add; a = Var i; b = Imm 1 });
  Ir.Builder.finish_block b ~label:"body" ~term:(Ir.Block.Return None);
  let cdfg = Ir.Builder.cdfg b in
  let dfg = (Ir.Cdfg.info cdfg 0).Ir.Cdfg.dfg in
  match Modulo.analyse cgc2 dfg ~carried:[ i ] with
  | Some m ->
    Alcotest.(check bool)
      (Printf.sprintf "II %d < latency %d" m.Modulo.ii m.Modulo.latency)
      true
      (m.Modulo.ii < m.Modulo.latency)
  | None -> Alcotest.fail "expected analysis"

let test_pipelined_cycles_math () =
  let dfg, s, i = carried_dfg () in
  match Modulo.analyse cgc2 dfg ~carried:[ s; i ] with
  | Some m ->
    Alcotest.(check int) "0 iterations" 0 (Modulo.pipelined_cycles m ~iterations:0);
    Alcotest.(check int) "1 iteration = latency" m.Modulo.latency
      (Modulo.pipelined_cycles m ~iterations:1);
    Alcotest.(check int) "100 iterations"
      ((99 * m.Modulo.ii) + m.Modulo.latency)
      (Modulo.pipelined_cycles m ~iterations:100);
    Alcotest.(check bool) "pipelining never slower than sequential" true
      (Modulo.pipelined_cycles m ~iterations:100 <= 100 * m.Modulo.latency)
  | None -> Alcotest.fail "expected analysis"

let test_division_unsupported () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.fresh_var b "x" in
  Ir.Builder.emit b
    (Ir.Instr.Div { dst = Ir.Builder.fresh_var b "q"; a = Var x; b = Imm 2 });
  Ir.Builder.finish_block b ~label:"body" ~term:(Ir.Block.Return None);
  let cdfg = Ir.Builder.cdfg b in
  let dfg = (Ir.Cdfg.info cdfg 0).Ir.Cdfg.dfg in
  Alcotest.(check bool) "unsupported" true (Modulo.analyse cgc2 dfg ~carried:[] = None)

let prepared = lazy (Flow.prepare ~name:"acc" {|
int out[1];
int x[64];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 4096; i++) {
    s += x[i & 63] * x[i & 63] + (s >> 3);
  }
  out[0] = s;
}
|})

let test_engine_pipelining_helps () =
  let p = Lazy.force prepared in
  let pl = List.hd (Platform.paper_configs ()) in
  let run pipelined =
    Engine.run ~cgc_pipelining:pipelined ~max_moves:(Ir.Cdfg.block_count p.Flow.cdfg)
      pl ~timing_constraint:1 p.Flow.cdfg p.Flow.profile
  in
  let flat = run false and pipe = run true in
  Alcotest.(check bool) "same moved kernels" true
    (flat.Engine.moved = pipe.Engine.moved);
  Alcotest.(check bool)
    (Printf.sprintf "pipelined CGC cycles %d <= flat %d"
       pipe.Engine.final.Engine.t_coarse_cgc flat.Engine.final.Engine.t_coarse_cgc)
    true
    (pipe.Engine.final.Engine.t_coarse_cgc <= flat.Engine.final.Engine.t_coarse_cgc);
  Alcotest.(check bool) "total no worse" true
    (pipe.Engine.final.Engine.t_total <= flat.Engine.final.Engine.t_total)

let test_non_self_loop_blocks_unaffected () =
  (* a straight-line program has no self-looping block: pipelining is a
     no-op *)
  let p = Flow.prepare ~name:"straight" {|
int out[1];
void main() { out[0] = 1 + 2 * 3; }
|} in
  let pl = List.hd (Platform.paper_configs ()) in
  let e0 = Engine.evaluate ~cgc_pipelining:false pl p.Flow.cdfg p.Flow.profile in
  let e1 = Engine.evaluate ~cgc_pipelining:true pl p.Flow.cdfg p.Flow.profile in
  Alcotest.(check int) "identical totals" (e0 []).Engine.t_total (e1 []).Engine.t_total

let suite =
  [
    Alcotest.test_case "II bounds" `Quick test_bounds;
    Alcotest.test_case "wide kernels pipeline" `Quick test_wide_kernel_pipelines_well;
    Alcotest.test_case "pipelined cycles math" `Quick test_pipelined_cycles_math;
    Alcotest.test_case "division unsupported" `Quick test_division_unsupported;
    Alcotest.test_case "engine pipelining helps" `Quick test_engine_pipelining_helps;
    Alcotest.test_case "no self-loop, no effect" `Quick test_non_self_loop_blocks_unaffected;
  ]
