(* Unit tests for the platform description. *)

module Platform = Hypar_core.Platform
module Fpga = Hypar_finegrain.Fpga
module Cgc = Hypar_coarsegrain.Cgc

let test_defaults () =
  let p =
    Platform.make ~fpga:(Fpga.make ~area:1500 ()) ~cgc:(Cgc.two_by_two 2) ()
  in
  Alcotest.(check int) "paper clock ratio" 3 p.Platform.clock_ratio;
  Alcotest.(check bool) "derived name mentions area" true
    (Str_contains.contains p.Platform.name "1500")

let test_paper_configs () =
  let configs = Platform.paper_configs () in
  Alcotest.(check int) "four configurations" 4 (List.length configs);
  let areas =
    List.sort_uniq compare
      (List.map (fun (p : Platform.t) -> p.Platform.fpga.Fpga.area) configs)
  in
  Alcotest.(check (list int)) "areas 1500 and 5000" [ 1500; 5000 ] areas;
  let cgc_counts =
    List.sort_uniq compare
      (List.map (fun (p : Platform.t) -> p.Platform.cgc.Cgc.cgcs) configs)
  in
  Alcotest.(check (list int)) "two and three CGCs" [ 2; 3 ] cgc_counts;
  List.iter
    (fun (p : Platform.t) ->
      Alcotest.(check int) "2x2 geometry" 2 p.Platform.cgc.Cgc.rows;
      Alcotest.(check int) "2x2 geometry" 2 p.Platform.cgc.Cgc.cols)
    configs

let test_clock_conversion () =
  let p =
    Platform.make ~clock_ratio:3 ~fpga:(Fpga.make ~area:100 ())
      ~cgc:(Cgc.two_by_two 1) ()
  in
  Alcotest.(check int) "exact multiple" 4 (Platform.cgc_to_fpga_cycles p 12);
  Alcotest.(check int) "rounds up" 5 (Platform.cgc_to_fpga_cycles p 13);
  Alcotest.(check int) "zero" 0 (Platform.cgc_to_fpga_cycles p 0)

let test_validation () =
  (match
     Platform.make ~clock_ratio:0 ~fpga:(Fpga.make ~area:100 ())
       ~cgc:(Cgc.two_by_two 1) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clock_ratio 0 must be rejected");
  (match Fpga.make ~area:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "area 0 must be rejected");
  match Cgc.make ~cgcs:0 ~rows:2 ~cols:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cgcs 0 must be rejected"

let test_cgc_descriptions () =
  Alcotest.(check string) "two" "two 2x2" (Cgc.describe (Cgc.two_by_two 2));
  Alcotest.(check string) "three" "three 2x2" (Cgc.describe (Cgc.two_by_two 3));
  Alcotest.(check int) "slots" 12 (Cgc.node_slots (Cgc.two_by_two 3));
  Alcotest.(check int) "chains" 6 (Cgc.chains (Cgc.two_by_two 3))

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "paper configurations" `Quick test_paper_configs;
    Alcotest.test_case "clock conversion" `Quick test_clock_conversion;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "CGC descriptions" `Quick test_cgc_descriptions;
  ]
