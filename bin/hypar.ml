(* hypar — command-line driver for the HYPAR partitioning framework.

   Subcommands:
     partition  run the full Figure-2 flow on a Mini-C (or .ir) file
                (--report for Markdown, --loops / --pipelined variants)
     kernels    print the Table-1 style kernel analysis
     analyze    IR diagnostics over the lowered CDFG (A001-A008:
                use-before-def, dead stores, unreachable blocks, constant
                branches, interval-derived out-of-bounds / div-by-zero,
                unhoisted invariant loads, write-only registers; text or
                JSON, --deny/--max-findings CI gates, -O to inspect the
                optimised IR)
     opt        run the optimisation pipeline and report the shrink
                (blocks/instrs before and after; -o FILE serialises the
                optimised CDFG)
     profile    print the dynamic profile of a program
     map        show both mappings per block (temporal partitions, Gantt)
     lint       source diagnostics (W001-W009; --deny for CI gates)
     baselines  compare kernel-selection strategies
     ranges     value-range / width-overflow analysis
     explore    design-space exploration (axis grids, --jobs N parallel
                evaluation, memo cache, Pareto frontier, text/csv/json/md;
                hardened: --faults/--retries/--point-fuel and a crash-safe
                --checkpoint FILE journal with --resume)
     sweep      partition across an A_FPGA x CGC design-space grid
                (a thin preset over the explore engine)
     faults     parse/print a fault specification and show the degraded
                platform it produces (see docs/resilience.md)
     dump       serialise the compiled CDFG (.ir)
     dot        emit the CFG (or one block's DFG) as Graphviz
     demo       reproduce the paper's Tables 2 and 3
     trace      validate and summarise a --trace output file
     fuzz       differential fuzzing: seeded well-formed Mini-C program
                generation, cross-backend/-frontend/-optimisation oracle
                matrix, auto-shrinking reproducers, replayable crash
                corpus (--corpus/--replay DIR, --jobs N, text/JSON
                report; see docs/fuzzing.md)
     serve      long-running JSON-lines batch service (stdin/stdout or
                --socket PATH): verbs partition/analyze/explore/faults/
                health, bounded queue with typed overloaded rejection,
                per-request deadlines (wall-clock + fuel), worker-domain
                pool (--jobs), graceful drain on SIGINT/SIGTERM; with
                --jobs > 1 (or --grace/--quarantine/--chaos) the pool is
                supervised: crashed/wedged workers respawn, failing
                requests are retried and ultimately quarantined with a
                typed poisoned envelope (see docs/server.md)
     soak       chaos soak campaign against an in-process supervised
                server: N seeded requests under --chaos (crashes,
                wedges, delays, dropped/truncated writes, slow-loris
                reads), asserting exactly-one-response, full pool
                healing and a jobs-independent response digest

   Most commands also take --trace FILE (Chrome trace_event JSON of the
   run; HYPAR_TRACE=FILE is an equivalent default) and --stats (per-stage
   timings and counters on stderr).

   partition and map accept --verify-ir to run the Hypar_ir.Verify
   structural checker on the IR before and after every pass.

   SIGINT anywhere outside serve raises Sys.Break (Sys.catch_break):
   cleanup handlers run — notably the explore --checkpoint journal is
   flushed and closed — and the process exits 130. *)

module Flow = Hypar_core.Flow
module Platform = Hypar_core.Platform
module Engine = Hypar_core.Engine
module Explore = Hypar_explore

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

exception Unsupported_input of string

(* The one frontend dispatch every subcommand shares, keyed on the file
   extension: .ir files (serialised CDFGs, see Hypar_ir.Serialize) load
   directly, .hbc goes through the bytecode frontend, .mc through the
   Mini-C compiler; anything else is a clean exit-2 error rather than a
   Mini-C parse failure.  [raw] skips the optimisation pipeline (Mini-C
   [~simplify:false], bytecode [~optimize:false]; meaningless for .ir);
   [verify] overrides the Passes.verify_passes default. *)
let load_cdfg ?(raw = false) ?verify path =
  let name = Filename.basename path in
  if Filename.check_suffix path ".ir" then begin
    let cdfg = Hypar_ir.Serialize.of_string (read_file path) in
    if Option.value verify ~default:!Hypar_ir.Passes.verify_passes then
      Hypar_ir.Verify.check_exn ~context:name cdfg;
    cdfg
  end
  else if Filename.check_suffix path ".hbc" then
    Hypar_bytecode.Driver.compile_exn ~name ~optimize:(not raw)
      ?verify_ir:verify (read_file path)
  else if Filename.check_suffix path ".mc" then
    Hypar_minic.Driver.compile_exn ~name ~simplify:(not raw) ?verify_ir:verify
      (read_file path)
  else raise (Unsupported_input path)

(* [backend] is the --interp override; when absent Profile.run honours
   the HYPAR_INTERP environment variable and defaults to the compiled
   backend, which is byte-identical to the tree-walking oracle. *)
let prepare_file ?backend ?(verify_ir = false) ?max_steps path =
  let cdfg = load_cdfg ?verify:(if verify_ir then Some true else None) path in
  let interp = Hypar_profiling.Profile.run ?backend ?max_steps cdfg in
  let profile = Hypar_profiling.Profile.of_result cdfg interp in
  { Flow.cdfg; profile; interp }

(* Uniform reporting + exit codes for the typed failures every subcommand
   can hit: frontend errors render as a located file:line:col diagnostic
   (exit 2, never a backtrace), an exhausted profiling budget as a plain
   message (exit 2), and a broken IR invariant as the verifier report
   (exit 3). *)
let with_verification f =
  match f () with
  | exception Hypar_ir.Verify.Failed { context; violations } ->
    Printf.eprintf "hypar: IR verification failed after %S:\n%s\n" context
      (Hypar_ir.Verify.report violations);
    3
  | exception Hypar_minic.Driver.Frontend_error { name; err } ->
    Printf.eprintf "%s%d:%d: %s\n"
      (match name with Some n -> n ^ ":" | None -> "")
      err.Hypar_minic.Driver.line err.Hypar_minic.Driver.col
      err.Hypar_minic.Driver.msg;
    2
  | exception Hypar_bytecode.Driver.Frontend_error { name; err } ->
    Printf.eprintf "%s%d:%d: %s\n"
      (match name with Some n -> n ^ ":" | None -> "")
      err.Hypar_bytecode.Driver.line err.Hypar_bytecode.Driver.col
      err.Hypar_bytecode.Driver.msg;
    2
  | exception Unsupported_input path ->
    Printf.eprintf
      "hypar: %s: unsupported input (expected .mc Mini-C, .hbc bytecode or \
       .ir serialised CDFG)\n"
      path;
    2
  | exception Hypar_profiling.Interp.Fuel_exhausted { steps } ->
    Printf.eprintf
      "hypar: profiling budget exhausted after %d steps (raise --point-fuel)\n"
      steps;
    2
  | code -> code

let platform_of ~area ~cgcs ~rows ~cols ~ratio =
  Platform.make ~clock_ratio:ratio
    ~fpga:(Hypar_finegrain.Fpga.make ~area ())
    ~cgc:(Hypar_coarsegrain.Cgc.make ~cgcs ~rows ~cols ())
    ()

open Cmdliner

(* ---- profiling backend: --interp compiled|tree / HYPAR_INTERP env ---- *)

let interp_arg =
  Arg.(
    value
    & opt (some (enum [ ("compiled", `Compiled); ("tree", `Tree) ])) None
    & info [ "interp" ] ~docv:"BACKEND"
        ~doc:
          "profiling interpreter backend: $(b,compiled) (default; flattens \
           the CDFG once and executes preallocated instruction arrays) or \
           $(b,tree) (the tree-walking oracle). Both produce byte-identical \
           profiles. The $(b,HYPAR_INTERP) environment variable provides \
           the default")

(* ---- observability: --trace FILE / --stats / HYPAR_TRACE env ---- *)

type obs = { trace_file : string option; stats : bool }

let obs_args =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "write a Chrome trace_event JSON of this run to $(docv); open it \
             in chrome://tracing or Perfetto. The $(b,HYPAR_TRACE) \
             environment variable provides a default (empty or $(b,0) \
             disables it)")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"print per-stage span timings and counter totals to stderr")
  in
  Term.(
    const (fun trace_file stats -> { trace_file; stats })
    $ trace_arg $ stats_arg)

(* Wraps a subcommand body: when --trace/--stats (or HYPAR_TRACE) asks for
   observability, enable the sink around the run, emit the trace file and
   stats afterwards — even if the body raises.  Without them this adds
   nothing, keeping output byte-identical to an uninstrumented build. *)
let with_obs ~command (obs : obs) f =
  let trace_file =
    match obs.trace_file with
    | Some _ as t -> t
    | None -> (
      match Sys.getenv_opt "HYPAR_TRACE" with
      | None | Some "" | Some "0" -> None
      | Some file -> Some file)
  in
  if trace_file = None && not obs.stats then f ()
  else begin
    Hypar_obs.Sink.clear ();
    Hypar_obs.Sink.enable ();
    let finish () =
      let events = Hypar_obs.Sink.events () in
      Hypar_obs.Sink.disable ();
      Hypar_obs.Sink.clear ();
      (match trace_file with
      | None -> ()
      | Some file ->
        (* atomic: an interrupt mid-run never leaves a torn trace *)
        Hypar_obs.Export.write_file file (Hypar_obs.Export.chrome events));
      if obs.stats then prerr_string (Hypar_obs.Stats.render events)
    in
    Fun.protect ~finally:finish (fun () ->
        Hypar_obs.Span.with_ ~cat:"cli" ("cli." ^ command) f)
  end

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:
          "input program: Mini-C source ($(b,.mc)), HYPAR bytecode \
           ($(b,.hbc)) or a serialised CDFG ($(b,.ir))")

let area_arg =
  Arg.(value & opt int 1500 & info [ "area"; "a" ] ~docv:"UNITS" ~doc:"FPGA area $(docv) (A_FPGA)")

let cgcs_arg =
  Arg.(value & opt int 2 & info [ "cgcs"; "k" ] ~docv:"N" ~doc:"number of CGC components")

let rows_arg = Arg.(value & opt int 2 & info [ "rows" ] ~docv:"N" ~doc:"CGC rows")
let cols_arg = Arg.(value & opt int 2 & info [ "cols" ] ~docv:"N" ~doc:"CGC columns")

let ratio_arg =
  Arg.(value & opt int 3 & info [ "clock-ratio" ] ~docv:"R" ~doc:"T_FPGA / T_CGC")

let constraint_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "timing"; "t" ] ~docv:"CYCLES" ~doc:"timing constraint in FPGA cycles")

let verify_ir_arg =
  Arg.(
    value & flag
    & info [ "verify-ir" ]
        ~doc:"check IR structural invariants before and after every pass")

let faults_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "fault specification file to degrade the platform with (see \
           $(b,hypar faults --help) for the syntax)")

let partition_cmd =
  let run file area cgcs rows cols ratio timing report loops pipelined verify_ir
      faults interp obs =
    with_obs ~command:"partition" obs @@ fun () ->
    with_verification @@ fun () ->
    let prepared = prepare_file ?backend:interp ~verify_ir file in
    let platform = platform_of ~area ~cgcs ~rows ~cols ~ratio in
    let granularity = if loops then `Loop else `Block in
    let go platform =
      Engine.run ~granularity ~cgc_pipelining:pipelined
        ?verify_ir:(if verify_ir then Some true else None)
        platform ~timing_constraint:timing prepared.Flow.cdfg
        prepared.Flow.profile
    in
    match faults with
    | None ->
      let r = go platform in
      if report then print_string (Hypar_core.Report.markdown r)
      else Format.printf "%a@." Engine.pp r;
      if Engine.met r then 0 else 1
    | Some spec_file -> (
      match
        Result.bind (Hypar_resilience.Spec.load spec_file) (fun spec ->
            Result.map
              (fun degraded ->
                Hypar_resilience.Delta.of_runs ~healthy:(go platform)
                  ~degraded:(go degraded))
              (Hypar_resilience.Degrade.apply spec platform))
      with
      | Error msg ->
        Printf.eprintf "hypar: %s\n" msg;
        2
      | Ok delta ->
        let r = delta.Hypar_resilience.Delta.degraded in
        if report then print_string (Hypar_core.Report.markdown r)
        else Format.printf "%a@." Engine.pp r;
        Format.printf "%a@." Hypar_resilience.Delta.pp delta;
        if Engine.met r then 0 else 1)
  in
  let report_arg =
    Arg.(value & flag & info [ "report" ] ~doc:"emit a Markdown report instead of the trace")
  in
  let loops_arg =
    Arg.(value & flag & info [ "loops" ] ~doc:"move whole innermost loops per step")
  in
  let pipelined_arg =
    Arg.(value & flag & info [ "pipelined" ] ~doc:"modulo-schedule moved kernels on the CGC")
  in
  let term =
    Term.(
      const run $ file_arg $ area_arg $ cgcs_arg $ rows_arg $ cols_arg
      $ ratio_arg $ constraint_arg $ report_arg $ loops_arg $ pipelined_arg
      $ verify_ir_arg $ faults_file_arg $ interp_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Partition a Mini-C program between fine and coarse-grain hardware \
             (optionally on a $(b,--faults)-degraded platform)")
    term

let kernels_cmd =
  let run file top interp obs =
    with_obs ~command:"kernels" obs @@ fun () ->
    with_verification @@ fun () ->
    let prepared = prepare_file ?backend:interp file in
    let analysis =
      Hypar_analysis.Kernel.analyse prepared.Flow.cdfg prepared.Flow.profile
    in
    print_string
      (Hypar_analysis.Table.render ~top ~title:(Filename.basename file) analysis);
    0
  in
  let top_arg =
    Arg.(value & opt int 8 & info [ "top" ] ~docv:"N" ~doc:"number of kernels to list")
  in
  let term = Term.(const run $ file_arg $ top_arg $ interp_arg $ obs_args) in
  Cmd.v (Cmd.info "kernels" ~doc:"Kernel analysis (Table-1 style)") term

let analyze_cmd =
  let module Analyze = Hypar_analysis.Analyze in
  (* Diagnostics want the program as written: the optimiser deliberately
     removes most of what A002/A004/A007 report, and a broken .ir (the
     A001 case) would not survive verification — so .ir files load
     unverified and Mini-C compiles with the pipeline off unless -O
     explicitly asks for the optimised view. *)
  let load ~optimize file =
    let cdfg = load_cdfg ~raw:true ~verify:false file in
    if optimize then Hypar_ir.Passes.optimize ~verify:false cdfg else cdfg
  in
  let run files format max_findings deny optimize obs =
    with_obs ~command:"analyze" obs @@ fun () ->
    with_verification @@ fun () ->
    (* resolve the denied codes first so a typo fails fast *)
    let deny_codes =
      if List.exists (fun s -> String.lowercase_ascii s = "all") deny then
        Ok Analyze.all_codes
      else
        List.fold_left
          (fun acc s ->
            match (acc, Analyze.code_of_string s) with
            | Error _, _ -> acc
            | Ok _, None -> Error s
            | Ok codes, Some c -> Ok (c :: codes))
          (Ok []) deny
    in
    match deny_codes with
    | Error s ->
      Printf.eprintf
        "hypar: unknown analyze code %S (use A001..A008 or a mnemonic)\n" s;
      2
    | Ok deny_codes ->
      let total = ref 0 and denied = ref [] in
      List.iter
        (fun file ->
          let findings = Analyze.check (load ~optimize file) in
          total := !total + List.length findings;
          List.iter
            (fun (f : Analyze.finding) ->
              if List.mem f.code deny_codes then
                denied := Analyze.code_id f.code :: !denied)
            findings;
          match format with
          | `Json -> print_string (Analyze.render_json ~file findings)
          | `Text -> print_string (Analyze.render ~file findings))
        files;
      (match format with
      | `Text when !total > 0 ->
        Printf.printf "%d finding%s\n" !total (if !total = 1 then "" else "s")
      | _ -> ());
      let denied = List.sort_uniq compare !denied in
      let over_limit =
        match max_findings with Some m -> !total > m | None -> false
      in
      if denied <> [] then
        Printf.eprintf "hypar: denied analyze codes present: %s\n"
          (String.concat ", " denied);
      (match (over_limit, max_findings) with
      | true, Some m ->
        Printf.eprintf "hypar: %d findings exceed --max-findings %d\n" !total m
      | _ -> ());
      if denied <> [] || over_limit then 1 else 0
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Mini-C source or serialised .ir file(s)")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"output format: $(b,text) or $(b,json)")
  in
  let max_findings_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-findings" ] ~docv:"N"
          ~doc:"fail (exit 1) when more than $(docv) findings are emitted")
  in
  let deny_arg =
    Arg.(
      value & opt_all string []
      & info [ "deny" ] ~docv:"CODE"
          ~doc:
            "fail (exit 1) if this code is present; accepts an id (A001), a \
             mnemonic (use-before-def) or $(b,all); repeatable")
  in
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "O"; "optimized" ]
          ~doc:"analyze the optimised IR (after $(b,Passes.optimize)) instead \
                of the program as written")
  in
  let term =
    Term.(
      const run $ files_arg $ format_arg $ max_findings_arg $ deny_arg
      $ optimize_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"IR diagnostics over the lowered CDFG (dataflow-backed A001-A008: \
             use-before-def, dead stores, unreachable blocks, constant \
             branches, possible out-of-bounds/div-by-zero, unhoisted \
             invariant loads, write-only registers)")
    term

let opt_cmd =
  let run file out verify_ir obs =
    with_obs ~command:"opt" obs @@ fun () ->
    with_verification @@ fun () ->
    let cdfg =
      load_cdfg ~raw:true ?verify:(if verify_ir then Some true else None) file
    in
    let blocks_before = Hypar_ir.Cdfg.block_count cdfg in
    let instrs_before = Hypar_ir.Cdfg.total_instrs cdfg in
    let optimized =
      Hypar_ir.Passes.optimize
        ?verify:(if verify_ir then Some true else None)
        cdfg
    in
    let blocks_after = Hypar_ir.Cdfg.block_count optimized in
    let instrs_after = Hypar_ir.Cdfg.total_instrs optimized in
    Printf.printf "%s: %d blocks / %d instrs -> %d blocks / %d instrs (%+d)\n"
      (Filename.basename file) blocks_before instrs_before blocks_after
      instrs_after
      (instrs_after - instrs_before);
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out_bin path in
      output_string oc (Hypar_ir.Serialize.to_string optimized);
      close_out oc);
    0
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"serialise the optimised CDFG to $(docv) (.ir format)")
  in
  let term =
    Term.(const run $ file_arg $ out_arg $ verify_ir_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Run the optimisation pipeline and report the shrink \
             (use $(b,--stats) for per-pass detail)")
    term

let profile_cmd =
  let run file interp obs =
    with_obs ~command:"profile" obs @@ fun () ->
    with_verification @@ fun () ->
    let prepared = prepare_file ?backend:interp file in
    Format.printf "%a@." Hypar_profiling.Profile.pp prepared.Flow.profile;
    0
  in
  let term = Term.(const run $ file_arg $ interp_arg $ obs_args) in
  Cmd.v (Cmd.info "profile" ~doc:"Dynamic profile of a Mini-C program") term

let dot_cmd =
  let run file block =
    with_verification @@ fun () ->
    let prepared = prepare_file file in
    (match block with
    | None -> print_string (Hypar_ir.Dot.cfg_to_dot prepared.Flow.cdfg)
    | Some b ->
      let info = Hypar_ir.Cdfg.info prepared.Flow.cdfg b in
      print_string
        (Hypar_ir.Dot.dfg_to_dot ~title:(Printf.sprintf "BB%d" b) info.Hypar_ir.Cdfg.dfg));
    0
  in
  let block_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block"; "b" ] ~docv:"ID" ~doc:"emit this block's DFG instead of the CFG")
  in
  let term = Term.(const run $ file_arg $ block_arg) in
  Cmd.v (Cmd.info "dot" ~doc:"Graphviz export of the CFG or one DFG") term

let map_cmd =
  let run file block area cgcs rows cols verify_ir obs =
    with_obs ~command:"map" obs @@ fun () ->
    with_verification @@ fun () ->
    let prepared = prepare_file ~verify_ir file in
    let cdfg = prepared.Flow.cdfg in
    let fpga = Hypar_finegrain.Fpga.make ~area () in
    let cgc = Hypar_coarsegrain.Cgc.make ~cgcs ~rows ~cols () in
    let show i =
      let info = Hypar_ir.Cdfg.info cdfg i in
      let dfg = info.Hypar_ir.Cdfg.dfg in
      Printf.printf "BB%d (%s): %d ops, %d ASAP levels\n" i
        info.Hypar_ir.Cdfg.block.Hypar_ir.Block.label
        (Hypar_ir.Dfg.node_count dfg)
        (Hypar_ir.Dfg.max_level dfg);
      let fine = Hypar_finegrain.Fine_map.map_block fpga cdfg i in
      Format.printf "  fine-grain:  %a@," Hypar_finegrain.Fine_map.pp_block_mapping fine;
      Format.print_flush ();
      (match Hypar_coarsegrain.Coarse_map.map_block cgc cdfg i with
      | Some m ->
        Format.printf "  coarse-grain: %a@." Hypar_coarsegrain.Coarse_map.pp_block_mapping m;
        print_string
          (Hypar_coarsegrain.Binding.render_gantt cgc dfg
             m.Hypar_coarsegrain.Coarse_map.schedule
             m.Hypar_coarsegrain.Coarse_map.binding)
      | None -> print_endline "  coarse-grain: not CGC-executable (division)");
      print_newline ()
    in
    (match block with
    | Some b -> show b
    | None -> List.iter show (Hypar_ir.Cdfg.block_ids cdfg));
    0
  in
  let block_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block"; "b" ] ~docv:"ID" ~doc:"map only this block")
  in
  let term =
    Term.(
      const run $ file_arg $ block_arg $ area_arg $ cgcs_arg $ rows_arg
      $ cols_arg $ verify_ir_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Show both mappings of each block (temporal partitions, CGC Gantt)")
    term

let lint_cmd =
  let module Lint = Hypar_analysis.Lint in
  let run file format max_warnings deny =
    (* resolve the denied codes first so a typo fails fast *)
    let deny_codes =
      if List.exists (fun s -> String.lowercase_ascii s = "all") deny then
        Ok Lint.all_codes
      else
        List.fold_left
          (fun acc s ->
            match (acc, Lint.code_of_string s) with
            | Error _, _ -> acc
            | Ok _, None -> Error s
            | Ok codes, Some c -> Ok (c :: codes))
          (Ok []) deny
    in
    match deny_codes with
    | Error s ->
      Printf.eprintf "hypar: unknown lint code %S (use W001..W009 or a mnemonic)\n" s;
      2
    | Ok deny_codes -> (
      match Lint.check ~name:(Filename.basename file) (read_file file) with
      | Error msg ->
        Printf.eprintf "%s:%s\n" file msg;
        2
      | Ok diags ->
        (match format with
        | `Json -> print_string (Lint.render_json ~file diags)
        | `Text ->
          print_string (Lint.render ~file diags);
          if diags <> [] then
            Printf.printf "%d warning%s\n" (List.length diags)
              (if List.length diags = 1 then "" else "s"));
        let denied =
          List.sort_uniq compare
            (List.filter_map
               (fun (d : Lint.diagnostic) ->
                 if List.mem d.code deny_codes then Some (Lint.code_id d.code)
                 else None)
               diags)
        in
        let over_limit =
          match max_warnings with
          | Some m -> List.length diags > m
          | None -> false
        in
        if denied <> [] then
          Printf.eprintf "hypar: denied lint codes present: %s\n"
            (String.concat ", " denied);
        (match (over_limit, max_warnings) with
        | true, Some m ->
          Printf.eprintf "hypar: %d warnings exceed --max-warnings %d\n"
            (List.length diags) m
        | _ -> ());
        if denied <> [] || over_limit then 1 else 0)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"output format: $(b,text) or $(b,json)")
  in
  let max_warnings_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-warnings" ] ~docv:"N"
          ~doc:"fail (exit 1) when more than $(docv) diagnostics are emitted")
  in
  let deny_arg =
    Arg.(
      value & opt_all string []
      & info [ "deny" ] ~docv:"CODE"
          ~doc:
            "fail (exit 1) if this code is present; accepts an id (W003), a \
             mnemonic (dead-assignment) or $(b,all); repeatable")
  in
  let term =
    Term.(const run $ file_arg $ format_arg $ max_warnings_arg $ deny_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Source diagnostics for a Mini-C program (unused/dead/unreachable \
             code, constant conditions, range hazards)")
    term

let baselines_cmd =
  let run file area cgcs rows cols ratio timing interp obs =
    with_obs ~command:"baselines" obs @@ fun () ->
    with_verification @@ fun () ->
    let prepared = prepare_file ?backend:interp file in
    let platform = platform_of ~area ~cgcs ~rows ~cols ~ratio in
    Printf.printf "%-28s %7s %16s %6s %8s\n" "strategy" "moves" "final" "met"
      "evals";
    List.iter
      (fun (o : Hypar_core.Baselines.outcome) ->
        Printf.printf "%-28s %7d %16d %6b %8d\n" o.Hypar_core.Baselines.name
          (List.length o.Hypar_core.Baselines.moved)
          o.Hypar_core.Baselines.t_total o.Hypar_core.Baselines.met
          o.Hypar_core.Baselines.evaluations)
      (Hypar_core.Baselines.compare_all platform ~timing_constraint:timing
         prepared.Flow.cdfg prepared.Flow.profile);
    0
  in
  let term =
    Term.(
      const run $ file_arg $ area_arg $ cgcs_arg $ rows_arg $ cols_arg
      $ ratio_arg $ constraint_arg $ interp_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "baselines"
       ~doc:"Compare kernel-selection strategies (greedy / benefit / random / exhaustive)")
    term

let ranges_cmd =
  let run file all =
    with_verification @@ fun () ->
    let cdfg = load_cdfg file in
    let reports =
      if all then Hypar_analysis.Range.analyse cdfg
      else Hypar_analysis.Range.overflow_risks cdfg
    in
    if reports = [] && not all then print_endline "no overflow risks detected";
    List.iter
      (fun r -> Format.printf "%a@." Hypar_analysis.Range.pp_report r)
      reports;
    0
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"list every register, not only overflow risks")
  in
  let term = Term.(const run $ file_arg $ all_arg) in
  Cmd.v
    (Cmd.info "ranges"
       ~doc:"Value-range analysis: flag registers that may overflow their declared width")
    term

(* shared by sweep and explore: run the exploration engine and report
   failed points as warnings; only an all-failed run exits non-zero *)
let exit_of_summary (summary : Explore.Driver.t) =
  let failed = Explore.Driver.failed_count summary in
  if failed > 0 then
    Printf.eprintf "hypar: %d of %d points failed\n" failed
      (Array.length summary.Explore.Driver.results);
  if Explore.Driver.all_failed summary then 1 else 0

let sweep_cmd =
  let module Space = Explore.Space in
  let module Driver = Explore.Driver in
  let run file ratio timing interp obs =
    with_obs ~command:"sweep" obs @@ fun () ->
    with_verification @@ fun () ->
    let prepared = prepare_file ?backend:interp file in
    let space =
      Space.make ~areas:[ 500; 1500; 5000 ] ~cgcs:[ 1; 2; 3 ]
        ~clock_ratios:[ ratio ] ~timings:[ timing ] ()
    in
    match Driver.run ~workload:(Filename.basename file) prepared space with
    | Error msg ->
      Printf.eprintf "hypar: %s\n" msg;
      2
    | Ok summary ->
      Printf.printf "%8s %10s %16s %16s %10s %7s\n" "A_FPGA" "CGCs" "initial"
        "final" "reduction" "moved";
      Array.iter
        (fun (r : Driver.point_result) ->
          match r.Driver.outcome with
          | Ok m ->
            Printf.printf "%8d %10s %16d %16d %9.1f%% %7d\n"
              r.Driver.point.Space.area m.Explore.Eval.cgc_desc
              m.Explore.Eval.initial.Engine.t_total
              m.Explore.Eval.final.Engine.t_total m.Explore.Eval.reduction
              (List.length m.Explore.Eval.moved)
          | Error msg ->
            Printf.printf "%8d %10d %16s  %s\n" r.Driver.point.Space.area
              r.Driver.point.Space.cgcs "FAILED" msg)
        summary.Driver.results;
      exit_of_summary summary
  in
  let term =
    Term.(
      const run $ file_arg $ ratio_arg $ constraint_arg $ interp_arg
      $ obs_args)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Partition across an A_FPGA x CGC-count design-space grid \
             (preset of $(b,explore))")
    term

let explore_cmd =
  let module Space = Explore.Space in
  let module Driver = Explore.Driver in
  let module Render = Explore.Render in
  let axis_conv =
    let parse s =
      match Space.axis_of_string s with
      | Ok v -> Ok v
      | Error e -> Error (`Msg e)
    in
    let print ppf vs =
      Format.pp_print_string ppf (String.concat "," (List.map string_of_int vs))
    in
    Arg.conv (parse, print)
  in
  let axis_arg ~names ~default ~docv ~doc =
    Arg.(value & opt axis_conv default & info names ~docv ~doc)
  in
  let areas_arg =
    axis_arg ~names:[ "area"; "a" ] ~default:[ 500; 1500; 5000 ] ~docv:"AXIS"
      ~doc:"A_FPGA axis: scalars and ranges, e.g. $(b,500,1500,5000) or \
            $(b,500..5000:500)"
  in
  let cgcs_arg =
    axis_arg ~names:[ "cgcs"; "k" ] ~default:[ 1; 2; 3 ] ~docv:"AXIS"
      ~doc:"CGC-count axis"
  in
  let rows_arg =
    axis_arg ~names:[ "rows" ] ~default:[ 2 ] ~docv:"AXIS" ~doc:"CGC rows axis"
  in
  let cols_arg =
    axis_arg ~names:[ "cols" ] ~default:[ 2 ] ~docv:"AXIS"
      ~doc:"CGC columns axis"
  in
  let ratios_arg =
    axis_arg ~names:[ "clock-ratio" ] ~default:[ 3 ] ~docv:"AXIS"
      ~doc:"T_FPGA / T_CGC axis"
  in
  let timings_arg =
    Arg.(
      required
      & opt (some axis_conv) None
      & info [ "timing"; "t" ] ~docv:"AXIS"
          ~doc:"timing-constraint axis, in FPGA cycles")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"evaluate points on $(docv) domains; results are identical \
                for every $(docv)")
  in
  let max_points_arg =
    Arg.(
      value
      & opt int Space.default_max_points
      & info [ "max-points" ] ~docv:"N"
          ~doc:"refuse to expand a space larger than $(docv) points")
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("text", `Text); ("csv", `Csv); ("json", `Json);
               ("markdown", `Markdown) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"output format: $(b,text), $(b,csv), $(b,json) or $(b,markdown)")
  in
  let pareto_only_arg =
    Arg.(
      value & flag
      & info [ "pareto-only" ]
          ~doc:"list only the Pareto frontier (area, t_total, energy)")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "re-attempt a failed point evaluation up to $(docv) times \
             (deterministic backoff)")
  in
  let point_fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "point-fuel" ] ~docv:"N"
          ~doc:
            "per-point budget: bounds the profiling interpreter at \
             preparation and each point's kernel-movement search")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "journal every completed point to the crash-safe $(docv); an \
             interrupted sweep can continue with $(b,--resume)")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "restore points already journalled in $(b,--checkpoint) instead \
             of re-evaluating them; the output is byte-identical to an \
             uninterrupted run")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "write the rendered summary to $(docv) instead of stdout; the \
             file is written atomically (temp file + rename), so an \
             interrupted run never leaves a torn report")
  in
  let run file areas cgcs rows cols ratios timings jobs max_points format
      pareto_only faults retries point_fuel checkpoint resume out interp obs =
    with_obs ~command:"explore" obs @@ fun () ->
    with_verification @@ fun () ->
    if resume && checkpoint = None then begin
      Printf.eprintf "hypar: --resume requires --checkpoint FILE\n";
      2
    end
    else
      match
        match faults with
        | None -> Ok None
        | Some f -> Result.map Option.some (Hypar_resilience.Spec.load f)
      with
      | Error msg ->
        Printf.eprintf "hypar: %s\n" msg;
        2
      | Ok faults -> (
        let prepared = prepare_file ?backend:interp ?max_steps:point_fuel file in
        let space =
          Space.make ~areas ~cgcs ~rows ~cols ~clock_ratios:ratios
            ~timings ~max_points ()
        in
        match
          Driver.run ~jobs ~workload:(Filename.basename file) ?faults ~retries
            ?point_fuel ?checkpoint ~resume prepared space
        with
        | Error msg ->
          Printf.eprintf "hypar: %s\n" msg;
          2
        | Ok summary ->
          let render =
            match format with
            | `Text -> Render.text
            | `Csv -> Render.csv
            | `Json -> Render.json
            | `Markdown -> Render.markdown
          in
          let rendered = render ~pareto_only summary in
          (match out with
          | None -> print_string rendered
          | Some file -> Hypar_obs.Export.write_file file rendered);
          exit_of_summary summary)
  in
  let term =
    Term.(
      const run $ file_arg $ areas_arg $ cgcs_arg $ rows_arg $ cols_arg
      $ ratios_arg $ timings_arg $ jobs_arg $ max_points_arg $ format_arg
      $ pareto_only_arg $ faults_file_arg $ retries_arg $ point_fuel_arg
      $ checkpoint_arg $ resume_arg $ out_arg $ interp_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Design-space exploration: axis grids over the platform \
             parameters, parallel cached evaluation, Pareto reporting")
    term

let faults_cmd =
  let module R = Hypar_resilience in
  let run spec_file format area cgcs rows cols ratio =
    match R.Spec.load spec_file with
    | Error msg ->
      Printf.eprintf "hypar: %s\n%s\n" msg R.Spec.syntax_help;
      2
    | Ok spec -> (
      (match format with
      | `Text -> print_string (R.Spec.to_text spec)
      | `Json -> print_endline (R.Spec.to_json spec));
      let platform = platform_of ~area ~cgcs ~rows ~cols ~ratio in
      match R.Degrade.apply spec platform with
      | Error msg ->
        Printf.eprintf "hypar: %s\n" msg;
        2
      | Ok degraded ->
        Format.printf "%a@." Platform.pp degraded;
        (match degraded.Platform.cgc_health with
        | Some h when Platform.degraded degraded ->
          Format.printf "%a@." Hypar_coarsegrain.Cgc.pp_health h
        | Some _ | None -> ());
        0)
  in
  let spec_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SPEC" ~doc:"fault specification file")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"print the parsed spec as $(b,text) or $(b,json)")
  in
  let term =
    Term.(
      const run $ spec_file_arg $ format_arg $ area_arg $ cgcs_arg $ rows_arg
      $ cols_arg $ ratio_arg)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Parse a fault specification, print its canonical form, and show \
          the degraded platform it produces on the given geometry")
    term

let dump_cmd =
  let run file raw =
    with_verification @@ fun () ->
    let cdfg = load_cdfg ~raw file in
    print_string (Hypar_ir.Serialize.to_string cdfg);
    0
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:"dump the CDFG as lowered, before the optimisation pipeline \
                (what $(b,hypar analyze) inspects)")
  in
  let term = Term.(const run $ file_arg $ raw_arg) in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Serialise the compiled CDFG (reload it by passing the .ir file to any command)")
    term

let compile_bc_cmd =
  let run file out optimized verify_ir obs =
    with_obs ~command:"compile-bc" obs @@ fun () ->
    with_verification @@ fun () ->
    let cdfg =
      load_cdfg ~raw:(not optimized)
        ?verify:(if verify_ir then Some true else None)
        file
    in
    let text = Hypar_bytecode.Emit.to_string cdfg in
    (match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc);
    0
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"write the bytecode to $(docv) instead of stdout")
  in
  let optimized_arg =
    Arg.(
      value & flag
      & info [ "O"; "optimized" ]
          ~doc:
            "compile the optimised CDFG instead of the raw lowering (the \
             default stays raw so re-ingesting the .hbc exercises the full \
             recovery-plus-optimisation pipeline)")
  in
  let term =
    Term.(const run $ file_arg $ out_arg $ optimized_arg $ verify_ir_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "compile-bc"
       ~doc:
         "Compile a program to HYPAR bytecode (.hbc); feeding the result \
          back to any subcommand exercises the bytecode frontend's CFG \
          recovery and stack-to-register lowering")
    term

let demo_cmd =
  let run obs =
    with_obs ~command:"demo" obs @@ fun () ->
    let apps =
      [
        ( "OFDM transmitter (Table 2)",
          Hypar_apps.Ofdm.prepared (),
          Hypar_apps.Ofdm.timing_constraint );
        ( "JPEG encoder (Table 3)",
          Hypar_apps.Jpeg.prepared (),
          Hypar_apps.Jpeg.timing_constraint );
      ]
    in
    List.iter
      (fun (title, prepared, timing_constraint) ->
        let runs =
          List.map
            (fun pl -> Flow.partition pl ~timing_constraint prepared)
            (Platform.paper_configs ())
        in
        print_string (Hypar_core.Result_table.render ~title runs);
        print_newline ())
      apps;
    0
  in
  let term = Term.(const run $ obs_args) in
  Cmd.v (Cmd.info "demo" ~doc:"Reproduce the paper's Tables 2 and 3") term

let serve_cmd =
  let module Srv = Hypar_server in
  let run jobs max_queue drain_timeout socket faults deadline fuel retry_after
      max_retries grace quarantine chaos interp obs =
    with_obs ~command:"serve" obs @@ fun () ->
    let ( let* ) v f =
      match v with
      | Error msg ->
        Printf.eprintf "hypar: %s\n" msg;
        2
      | Ok x -> f x
    in
    let* faults =
      match faults with
      | None -> Ok None
      | Some f -> Result.map Option.some (Hypar_resilience.Spec.load f)
    in
    let* chaos =
      match chaos with None -> Ok None | Some arg -> Srv.Chaos.of_arg arg
    in
    let* () =
      match quarantine with
      | None -> Ok ()
      | Some path -> Srv.Supervisor.validate_quarantine path
    in
    (* The self-healing pool engages whenever there are worker domains
       to supervise, or when any supervision feature is asked for
       explicitly; plain --jobs 1 keeps the inline path, whose
       responses stay in request order. *)
    let supervisor =
      if jobs > 1 || grace <> None || quarantine <> None || chaos <> None then
        Some
          {
            Srv.Supervisor.default_options with
            max_retries;
            grace_ms = grace;
            chaos;
            quarantine_path = quarantine;
          }
      else None
    in
    let config =
      {
        Srv.Server.jobs;
        max_queue;
        drain_timeout_ms = drain_timeout;
        retry_after_ms = retry_after;
        faults;
        backend = interp;
        default_deadline_ms = deadline;
        default_fuel = fuel;
        supervisor;
      }
    in
    match socket with
    | None -> Srv.Server.run_pipe config
    | Some path -> Srv.Server.run_socket config path
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "execute requests on $(docv) worker domains; with $(b,1) \
             (default) requests run inline and responses keep request order")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "bound the request queue at $(docv); further requests are \
             refused with a typed $(b,overloaded) envelope (backpressure)")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt int 2000
      & info [ "drain-timeout" ] ~docv:"MS"
          ~doc:
            "on SIGINT/SIGTERM, let in-flight requests finish for up to \
             $(docv) milliseconds before cancelling them cooperatively")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "serve a Unix-domain socket at $(docv) instead of stdin/stdout; \
             the path must not already exist and is removed on exit")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "default per-request wall-clock budget in milliseconds \
             (overridable per request with $(b,deadline_ms)); exceeding it \
             yields a $(b,deadline_exceeded) envelope, not a dead worker")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "default per-request profiling budget in interpreter steps \
             (overridable per request with $(b,fuel)); exhaustion yields a \
             $(b,deadline_exceeded) envelope with the step count")
  in
  let retry_after_arg =
    Arg.(
      value & opt int 100
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:
            "base of the $(b,overloaded) envelope's retry hint; the hint \
             scales with queue depth as $(docv) x ceil(depth / jobs)")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 1
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "times a request whose worker crashed or wedged is re-executed \
             before being quarantined with a $(b,poisoned) envelope \
             (supervised pool only)")
  in
  let grace_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "grace" ] ~docv:"MS"
          ~doc:
            "enable wedge detection: a worker past its request's deadline \
             budget plus $(docv) milliseconds with no poll progress is \
             abandoned and its request retried; must exceed the longest \
             legitimate gap between interpreter polls")
  in
  let quarantine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"FILE"
          ~doc:
            "journal quarantined request digests to $(docv) (crash-safe, \
             append-only) and reload them on start, so a restarted server \
             stays immune to known-poisonous requests")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "inject seeded faults into the supervised pool: $(b,default), \
             $(b,none), or a chaos spec file (testing only; see \
             $(b,docs/server.md))")
  in
  let term =
    Term.(
      const run $ jobs_arg $ max_queue_arg $ drain_timeout_arg $ socket_arg
      $ faults_file_arg $ deadline_arg $ fuel_arg $ retry_after_arg
      $ max_retries_arg $ grace_arg $ quarantine_arg $ chaos_arg $ interp_arg
      $ obs_args)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running batch-partitioning service: newline-delimited JSON \
          requests on stdin (or $(b,--socket)), one response envelope per \
          line; bounded queue, per-request deadlines, graceful drain, and \
          a supervised self-healing worker pool (see $(b,docs/server.md))")
    term

let fuzz_cmd =
  let module F = Hypar_fuzzgen in
  let run seed count budget_ms jobs fuel unsafe max_stmts depth no_shrink
      fail_on corpus_dir replay format out obs =
    with_obs ~command:"fuzz" obs @@ fun () ->
    match replay with
    | Some dir -> (
      match F.Corpus.load_dir dir with
      | Error msg ->
        Printf.eprintf "hypar: %s\n" msg;
        2
      | Ok entries ->
        let failed = ref 0 in
        List.iter
          (fun (e : F.Corpus.entry) ->
            let verdict = F.Corpus.replay ~fuel e in
            if verdict <> F.Oracle.Pass then incr failed;
            Printf.printf "corpus %s: %s\n" e.F.Corpus.name
              (F.Oracle.verdict_to_string verdict))
          entries;
        Printf.printf "replayed %d entries, %d failing\n" (List.length entries)
          !failed;
        if !failed = 0 then 0 else 1)
    | None ->
      let gen =
        {
          F.Gen.default_config with
          F.Gen.unsafe;
          max_stmts;
          max_depth = depth;
        }
      in
      let config =
        {
          F.Runner.default with
          F.Runner.seed;
          count;
          budget_ms;
          jobs;
          fuel;
          gen;
          shrink = not no_shrink;
          fail_on;
        }
      in
      let report = F.Runner.run config in
      (match corpus_dir with
      | None -> ()
      | Some dir ->
        List.iter
          (fun (f : F.Runner.failure) ->
            let entry =
              {
                F.Corpus.name = Printf.sprintf "auto-%d" f.F.Runner.case_seed;
                seed = Some f.F.Runner.case_seed;
                signature = f.F.Runner.finding.F.Oracle.signature;
                note =
                  Some (Printf.sprintf "found by hypar fuzz --seed %d" seed);
                source = f.F.Runner.reduced;
              }
            in
            Printf.eprintf "hypar: wrote %s\n" (F.Corpus.save ~dir entry))
          report.F.Runner.failures);
      let rendered =
        match format with
        | `Text -> F.Runner.to_text report
        | `Json -> F.Runner.to_json report
      in
      (match out with
      | None -> print_string rendered
      | Some path ->
        let oc = open_out_bin path in
        output_string oc rendered;
        close_out oc);
      if report.F.Runner.failures = [] then 0 else 1
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "campaign seed; the same seed yields the same programs and the \
             same report bytes, for any $(b,--jobs) value")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"number of programs to generate")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "stop after roughly $(docv) milliseconds instead of a fixed \
             count ($(b,--count) then bounds the maximum); the executed \
             prefix is still deterministic, only its length is not")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "judge programs on $(docv) worker domains; the report is \
             byte-identical for every value")
  in
  let fuel_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "baseline interpretation budget per program in steps (variants \
             get four times as much)")
  in
  let unsafe_arg =
    Arg.(
      value & flag
      & info [ "unsafe" ]
          ~doc:
            "also generate unguarded divisions, raw array indices and \
             uninitialised locals; runtime errors then become legitimate \
             and only the backend-equality oracles (which compare error \
             behaviour exactly) apply to failing runs")
  in
  let max_stmts_arg =
    Arg.(
      value & opt int F.Gen.default_config.F.Gen.max_stmts
      & info [ "max-stmts" ] ~docv:"N"
          ~doc:"statement budget for each generated $(b,main)")
  in
  let depth_arg =
    Arg.(
      value & opt int F.Gen.default_config.F.Gen.max_depth
      & info [ "depth" ] ~docv:"N" ~doc:"maximum loop/branch nesting depth")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"report failing programs as generated, without minimisation")
  in
  let fail_on_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fail-on" ] ~docv:"SUBSTRING"
          ~doc:
            "testing hook: flag any compiling program whose source contains \
             $(docv) with a synthetic $(b,injected) divergence, to exercise \
             the shrinking and reporting pipeline deterministically")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "persist every reduced reproducer as a replayable $(b,.mc) \
             entry under $(docv)")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "instead of generating, replay every corpus entry under \
             $(docv) through the full oracle matrix and report per-entry \
             verdicts")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"report format: $(b,text) or $(b,json)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"write the report to $(docv)")
  in
  let term =
    Term.(
      const run $ seed_arg $ count_arg $ budget_arg $ jobs_arg $ fuel_arg
      $ unsafe_arg $ max_stmts_arg $ depth_arg $ no_shrink_arg $ fail_on_arg
      $ corpus_arg $ replay_arg $ format_arg $ out_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded well-formed Mini-C \
          programs, judge each across the frontend/optimisation/backend \
          cross-product, shrink any divergence to a minimal reproducer \
          and optionally persist it to a replayable corpus (see \
          $(b,docs/fuzzing.md))")
    term

let soak_cmd =
  let module Srv = Hypar_server in
  let run seed count budget_ms jobs chaos corpus max_retries grace fuel
      no_baseline obs =
    with_obs ~command:"soak" obs @@ fun () ->
    match Srv.Chaos.of_arg chaos with
    | Error msg ->
      Printf.eprintf "hypar: %s\n%s\n" msg Srv.Chaos.syntax_help;
      2
    | Ok chaos -> (
      let config =
        {
          Srv.Soak.seed;
          count;
          budget_ms;
          jobs;
          chaos;
          corpus_dir = corpus;
          max_retries;
          grace_ms = grace;
          fuel;
          compare_baseline = not no_baseline;
        }
      in
      match Srv.Soak.run config with
      | Error msg ->
        Printf.eprintf "hypar: %s\n" msg;
        2
      | Ok report ->
        print_string (Srv.Soak.to_text report);
        if Srv.Soak.passed report then 0 else 1)
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "campaign seed; fixes the generated programs, the request mix \
             and every chaos decision")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"number of requests to drive")
  in
  let budget_arg =
    Arg.(
      value & opt int 60_000
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"wall budget for the whole campaign; exceeding it fails")
  in
  let jobs_arg =
    Arg.(
      value & opt int 4
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains of the supervised pool; the response digest is \
             identical for every value")
  in
  let chaos_spec_arg =
    Arg.(
      value & opt string "default"
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "fault mix: $(b,default), $(b,none), or a chaos spec file \
             (crash/wedge/delay/drop/truncate/slowloris directives)")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "mix the replayable crash-corpus entries under $(docv) into \
             the request stream alongside generated programs")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 1
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"retries before a worker-killing request is quarantined")
  in
  let grace_arg =
    Arg.(
      value & opt int 2000
      & info [ "grace" ] ~docv:"MS"
          ~doc:
            "wedge-detection grace of the supervised pool; must exceed the \
             longest legitimate gap between interpreter polls")
  in
  let fuel_arg =
    Arg.(
      value & opt int 50_000
      & info [ "fuel" ] ~docv:"N"
          ~doc:"interpreter-step budget per request")
  in
  let no_baseline_arg =
    Arg.(
      value & flag
      & info [ "no-baseline" ]
          ~doc:
            "skip the chaos-free comparison against an unsupervised \
             baseline session (only meaningful with $(b,--chaos none))")
  in
  let term =
    Term.(
      const run $ seed_arg $ count_arg $ budget_arg $ jobs_arg
      $ chaos_spec_arg $ corpus_arg $ max_retries_arg $ grace_arg $ fuel_arg
      $ no_baseline_arg $ obs_args)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos soak campaign: drive seeded requests through an in-process \
          supervised server under injected crashes, wedges, delays and I/O \
          interference, asserting exactly one response per request, full \
          pool healing and a $(b,--jobs)-independent response digest (see \
          $(b,docs/server.md))")
    term

let trace_cmd =
  let run file =
    match Hypar_obs.Export.parse_chrome (read_file file) with
    | Error msg ->
      Printf.eprintf "hypar: %s: %s\n" file msg;
      2
    | Ok events -> (
      match Hypar_obs.Span.validate events with
      | Error msg ->
        Printf.eprintf "hypar: %s: invalid trace: %s\n" file msg;
        1
      | Ok s ->
        Printf.printf "%s: %d events, %d spans, balanced, max depth %d\n" file
          s.Hypar_obs.Span.events s.Hypar_obs.Span.spans
          s.Hypar_obs.Span.max_depth;
        List.iter
          (fun (name, count) -> Printf.printf "  %-32s %d\n" name count)
          (List.sort compare s.Hypar_obs.Span.names);
        0)
  in
  let trace_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace_event JSON file")
  in
  let term = Term.(const run $ trace_file_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Validate and summarise a trace produced with $(b,--trace): checks \
          every span end matches the most recent open begin, then lists \
          per-name span counts")
    term

let () =
  (* SIGINT raises Sys.Break so every Fun.protect cleanup (checkpoint
     journals, trace files) runs before we exit with the conventional
     128+SIGINT code.  serve replaces the handler with its graceful
     drain.  ~catch:false keeps cmdliner from swallowing Break. *)
  Sys.catch_break true;
  let doc = "hybrid fine/coarse-grain reconfigurable partitioning (DATE'04/05 methodology)" in
  let info = Cmd.info "hypar" ~version:"1.0.0" ~doc in
  let group = Cmd.group info [ partition_cmd; kernels_cmd; analyze_cmd; opt_cmd; compile_bc_cmd; profile_cmd; dot_cmd; map_cmd; lint_cmd; baselines_cmd; ranges_cmd; explore_cmd; sweep_cmd; faults_cmd; dump_cmd; demo_cmd; trace_cmd; serve_cmd; fuzz_cmd; soak_cmd ] in
  match Cmd.eval' ~catch:false group with
  | code -> exit code
  | exception Sys.Break ->
    prerr_endline "hypar: interrupted";
    exit 130
  | exception e ->
    Printf.eprintf "hypar: uncaught exception: %s\n" (Printexc.to_string e);
    exit 125
