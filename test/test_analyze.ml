(* Unit tests for the IR diagnostics engine (hypar analyze, A001-A008). *)

module Ir = Hypar_ir
module Analyze = Hypar_analysis.Analyze

let compile src =
  Hypar_minic.Driver.compile_exn ~name:"test.mc" ~simplify:false src

let codes findings = List.map (fun (f : Analyze.finding) -> f.Analyze.code) findings

let has code findings = List.mem code (codes findings)

let mk name id = { Ir.Instr.vname = name; vid = id; vwidth = 16 }

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let test_codes_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Analyze.code_id c) true
        (Analyze.code_of_string (Analyze.code_id c) = Some c);
      Alcotest.(check bool) (Analyze.code_mnemonic c) true
        (Analyze.code_of_string (Analyze.code_mnemonic c) = Some c);
      Alcotest.(check bool) "lower-case id" true
        (Analyze.code_of_string (String.lowercase_ascii (Analyze.code_id c))
        = Some c))
    Analyze.all_codes;
  Alcotest.(check bool) "unknown code" true (Analyze.code_of_string "A999" = None)

let test_use_before_def () =
  (* hand-built: the entry reads a register nothing defines *)
  let ghost = mk "ghost" 0 and x = mk "x" 1 in
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:
        [ Ir.Instr.Bin { dst = x; op = Ir.Types.Add; a = Var ghost; b = Imm 1 } ]
      ~term:(Ir.Block.Return (Some (Var x)))
  in
  let cdfg = Ir.Cdfg.make ~name:"ghost" ~arrays:[] (Ir.Cfg.of_blocks [ entry ]) in
  let fs = Analyze.check cdfg in
  Alcotest.(check bool) "A001 reported" true (has Analyze.Use_before_def fs);
  let f = List.find (fun f -> f.Analyze.code = Analyze.Use_before_def) fs in
  Alcotest.(check int) "at block 0" 0 f.Analyze.block;
  Alcotest.(check int) "at instr 0" 0 f.Analyze.index

let test_frontend_code_has_no_a001 () =
  (* the frontend zero-initialises declarations at lowering, so A001 is
     an .ir-only hazard: even a one-arm assignment is definitely
     assigned *)
  let src =
    "int main() {\n\
    \  int y;\n\
    \  int c = 1;\n\
    \  if (c) { y = 3; }\n\
    \  return y;\n\
     }\n"
  in
  Alcotest.(check bool) "no A001 from compiled code" false
    (has Analyze.Use_before_def (Analyze.check (compile src)))

let test_dead_store_and_write_only () =
  let src =
    "int main() {\n\
    \  int x = 1;\n\
    \  int sink = 0;\n\
    \  x = 2;\n\
    \  sink = x;\n\
    \  return sink;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  Alcotest.(check bool) "A002 for the overwritten init" true
    (has Analyze.Dead_store fs)

let test_write_only () =
  let src =
    "int main() {\n\
    \  int unused = 41;\n\
    \  return 0;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  Alcotest.(check bool) "A008 reported" true
    (has Analyze.Write_only_variable fs)

let test_unreachable_and_constant_branch () =
  let src =
    "int main() {\n\
    \  int x = 5;\n\
    \  int r = 0;\n\
    \  if (x < 3) { r = 1; }\n\
    \  return r;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  Alcotest.(check bool) "A004 for the constant condition" true
    (has Analyze.Constant_branch fs)

let test_unreachable_block () =
  (* hand-built orphan block, unreachable from the entry *)
  let x = mk "x" 0 in
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:[ Ir.Instr.Mov { dst = x; src = Imm 1 } ]
      ~term:(Ir.Block.Return (Some (Var x)))
  in
  let orphan =
    Ir.Block.make ~label:"orphan"
      ~instrs:[ Ir.Instr.Mov { dst = x; src = Imm 2 } ]
      ~term:(Ir.Block.Return None)
  in
  let cdfg =
    Ir.Cdfg.make ~name:"orphan" ~arrays:[]
      (Ir.Cfg.of_blocks [ entry; orphan ])
  in
  let fs = Analyze.check cdfg in
  Alcotest.(check bool) "A003 reported" true
    (has Analyze.Unreachable_block fs);
  let f = List.find (fun f -> f.Analyze.code = Analyze.Unreachable_block) fs in
  Alcotest.(check int) "the orphan block" 1 f.Analyze.block

let test_out_of_bounds () =
  let src =
    "int a[8];\n\
     int main() {\n\
    \  int i;\n\
    \  int s = 0;\n\
    \  for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }\n\
    \  return s;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  Alcotest.(check bool) "A005 for the 16-trip walk of a[8]" true
    (has Analyze.Possible_out_of_bounds fs)

let test_in_bounds_is_clean () =
  let src =
    "int a[8];\n\
     int main() {\n\
    \  int i;\n\
    \  int s = 0;\n\
    \  for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }\n\
    \  return s;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  Alcotest.(check bool) "no A005 when the guard proves the bound" false
    (has Analyze.Possible_out_of_bounds fs)

let test_div_by_zero () =
  (* d comes from a mutable array, so its interval is the full element
     width — which spans zero *)
  let src =
    "int a[4];\n\
     int main() {\n\
    \  int d = a[0];\n\
    \  return 10 / d;\n\
     }\n"
  in
  Alcotest.(check bool) "A006 reported" true
    (has Analyze.Possible_div_by_zero (Analyze.check (compile src)))

let test_div_by_nonzero_is_clean () =
  let src =
    "int main() {\n\
    \  int d = 4;\n\
    \  return 10 / d;\n\
     }\n"
  in
  Alcotest.(check bool) "no A006 for a constant nonzero divisor" false
    (has Analyze.Possible_div_by_zero (Analyze.check (compile src)))

let test_invariant_load () =
  let src =
    "int k[4];\n\
     int out[16];\n\
     int main() {\n\
    \  int i;\n\
    \  for (i = 0; i < 16; i = i + 1) { out[i] = k[0] + i; }\n\
    \  return 0;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  Alcotest.(check bool) "A007 for the k[0] load" true
    (has Analyze.Unhoisted_invariant_load fs)

let fir_src =
  "int x[64];\n\
   int h[8];\n\
   int y[64];\n\
   void main() {\n\
  \  int i;\n\
  \  for (i = 0; i < 56; i = i + 1) {\n\
  \    int s = 0;\n\
  \    int t;\n\
  \    for (t = 0; t < 8; t = t + 1) {\n\
  \      s = s + x[i + t] * h[t];\n\
  \    }\n\
  \    y[i] = s >> 6;\n\
  \  }\n\
   }\n"

let test_optimized_fir_is_clean () =
  (* the optimiser removes everything analyze flags on the FIR kernel —
     including proving all three array walks in bounds *)
  let cdfg =
    Hypar_minic.Driver.compile_exn ~name:"fir.mc" ~simplify:true fir_src
  in
  Alcotest.(check (list string)) "no findings after optimize" []
    (List.map (fun f -> f.Analyze.message) (Analyze.check cdfg))

let test_unoptimized_fir_findings () =
  let fs = Analyze.check (compile fir_src) in
  Alcotest.(check (list string)) "pre-tests and duplicated inits"
    [ "A004"; "A002"; "A004"; "A002" ]
    (List.map (fun f -> Analyze.code_id f.Analyze.code) fs)

let test_findings_sorted_and_unique () =
  let src =
    "int main() {\n\
    \  int a = 1;\n\
    \  int b = 2;\n\
    \  a = 3;\n\
    \  b = 4;\n\
    \  return a + b;\n\
     }\n"
  in
  let fs = Analyze.check (compile src) in
  let keys =
    List.map
      (fun (f : Analyze.finding) ->
        (f.Analyze.block, f.Analyze.index, Analyze.code_id f.Analyze.code))
      fs
  in
  Alcotest.(check bool) "sorted" true (List.sort compare keys = keys);
  Alcotest.(check int) "unique" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_render () =
  let f =
    {
      Analyze.code = Analyze.Use_before_def;
      block = 2;
      index = 1;
      message = "ghost#7 may be read";
    }
  in
  Alcotest.(check string) "text line"
    "x.ir:BB2.1: note A001 [use-before-def]: ghost#7 may be read\n"
    (Analyze.render ~file:"x.ir" [ f ]);
  let t = { f with Analyze.index = -1 } in
  Alcotest.(check bool) "terminator position" true
    (contains (Analyze.render [ t ]) "BB2.term")

let test_render_json () =
  let f =
    {
      Analyze.code = Analyze.Possible_div_by_zero;
      block = 0;
      index = 3;
      message = "divisor \"d\" may be zero";
    }
  in
  let json = Analyze.render_json ~file:"p.mc" [ f ] in
  List.iter
    (fun affix -> Alcotest.(check bool) affix true (contains json affix))
    [
      "\"file\": \"p.mc\"";
      "\"count\": 1";
      "\"code\": \"A006\"";
      "\"name\": \"possible-div-by-zero\"";
      "\\\"d\\\"";
    ]

let suite =
  [
    Alcotest.test_case "codes round-trip" `Quick test_codes_roundtrip;
    Alcotest.test_case "A001: ghost read" `Quick test_use_before_def;
    Alcotest.test_case "A001: frontend code is definitely assigned" `Quick
      test_frontend_code_has_no_a001;
    Alcotest.test_case "A002: overwritten init" `Quick
      test_dead_store_and_write_only;
    Alcotest.test_case "A008: write-only variable" `Quick test_write_only;
    Alcotest.test_case "A004: constant condition" `Quick
      test_unreachable_and_constant_branch;
    Alcotest.test_case "A003: orphan block" `Quick test_unreachable_block;
    Alcotest.test_case "A005: 16-trip walk of a[8]" `Quick test_out_of_bounds;
    Alcotest.test_case "A005: guarded walk is clean" `Quick
      test_in_bounds_is_clean;
    Alcotest.test_case "A006: zero-spanning divisor" `Quick test_div_by_zero;
    Alcotest.test_case "A006: constant nonzero divisor is clean" `Quick
      test_div_by_nonzero_is_clean;
    Alcotest.test_case "A007: invariant load" `Quick test_invariant_load;
    Alcotest.test_case "optimized FIR is clean" `Quick
      test_optimized_fir_is_clean;
    Alcotest.test_case "unoptimized FIR findings" `Quick
      test_unoptimized_fir_findings;
    Alcotest.test_case "findings sorted and unique" `Quick
      test_findings_sorted_and_unique;
    Alcotest.test_case "render: text positions" `Quick test_render;
    Alcotest.test_case "render: JSON escaping" `Quick test_render_json;
  ]
