(* Unit tests for loop-invariant code motion. *)

module Ir = Hypar_ir
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let compile_raw src = Driver.compile_exn ~simplify:false src

let out0 ?(inputs = []) cdfg =
  (Interp.array_exn (Interp.run ~inputs cdfg) "out").(0)

(* instructions executed dynamically — LICM should lower this *)
let dyn_instrs ?(inputs = []) cdfg =
  (Interp.run ~inputs cdfg).Interp.instrs_executed

let test_hoists_invariant_mul () =
  let src = {|
int out[1];
int in[1];
void main() {
  int k = in[0];
  int s = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) {
    s = s + k * 37 + i;
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  let inputs = [ ("in", [| 5 |]) ] in
  Alcotest.(check int) "value preserved" (out0 ~inputs raw) (out0 ~inputs opt);
  Alcotest.(check bool) "fewer dynamic instructions" true
    (dyn_instrs ~inputs opt < dyn_instrs ~inputs raw)

let test_loop_carried_not_hoisted () =
  let src = {|
int out[1];
void main() {
  int s = 1;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    s = s * 3;
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  Alcotest.(check int) "3^10 preserved" 59049 (out0 opt);
  Alcotest.(check int) "raw agrees" 59049 (out0 raw)

let test_zero_trip_safety () =
  (* the hoisted computation must not change behaviour when the loop
     never runs *)
  let src = {|
int out[1];
int in[1];
void main() {
  int k = in[0];
  int s = 7;
  int i;
  for (i = 0; i < in[0]; i = i + 1) {
    s = s + k * 1000;
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  let inputs = [ ("in", [| 0 |]) ] in
  Alcotest.(check int) "zero-trip result" 7 (out0 ~inputs opt);
  Alcotest.(check int) "matches raw" (out0 ~inputs raw) (out0 ~inputs opt)

let test_loads_hoisted_when_no_store () =
  let src = {|
int out[1];
int table[4];
int in[4];
void main() {
  table[0] = in[0];
  int s = 0;
  int i;
  for (i = 0; i < 50; i = i + 1) {
    s = s + table[0];
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  let inputs = [ ("in", [| 3 |]) ] in
  Alcotest.(check int) "sum preserved" 150 (out0 ~inputs opt);
  let loads cdfg = (Interp.run ~inputs cdfg).Interp.mem_reads in
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check bool) "load hoisted out of the loop" true
    (total (loads opt) < total (loads raw))

let test_loads_not_hoisted_past_stores () =
  let src = {|
int out[1];
int buf[4];
void main() {
  buf[0] = 1;
  int s = 0;
  int i;
  for (i = 0; i < 5; i = i + 1) {
    s = s + buf[0];
    buf[0] = buf[0] + 1;
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  (* 1+2+3+4+5 *)
  Alcotest.(check int) "store kills hoisting" 15 (out0 opt);
  Alcotest.(check int) "matches raw" (out0 raw) (out0 opt)

let test_nested_loops_hoist_through () =
  let src = {|
int out[1];
int in[1];
void main() {
  int k = in[0];
  int s = 0;
  int i;
  for (i = 0; i < 20; i = i + 1) {
    int j;
    for (j = 0; j < 20; j = j + 1) {
      s = s + (k * 1000) + (i * 10) + j;
    }
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  let inputs = [ ("in", [| 2 |]) ] in
  Alcotest.(check int) "value preserved" (out0 ~inputs raw) (out0 ~inputs opt);
  (* k*1000 must leave both loops, i*10 at least the inner one *)
  Alcotest.(check bool) "substantially fewer dynamic instructions" true
    (dyn_instrs ~inputs opt + 500 < dyn_instrs ~inputs raw)

let test_division_never_hoisted () =
  (* hoisting a division would trap on the zero-trip path *)
  let src = {|
int out[1];
int in[2];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < in[0]; i = i + 1) {
    s = s + 100 / in[1];
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  (* in[0] = 0 and in[1] = 0: loop never runs, must not trap *)
  let inputs = [ ("in", [| 0; 0 |]) ] in
  Alcotest.(check int) "no trap on zero-trip" 0 (out0 ~inputs opt);
  ignore raw

let test_guarded_load_not_speculated () =
  (* a load that only executes under a branch must stay behind its
     guard: hoisting it to the preheader would trap on iterations (or
     whole runs) where the branch is never taken — found by
     hypar fuzz --unsafe *)
  let src = {|
int out[1];
int table[4];
int in[2];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (in[0] > 5) {
      s = s + table[in[1]];
    }
    s = s + i;
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  (* guard false, index wildly out of bounds: the load never runs, so
     neither program may trap *)
  let inputs = [ ("in", [| 0; 999 |]) ] in
  Alcotest.(check int) "no trap when the guard is false" (out0 ~inputs raw)
    (out0 ~inputs opt);
  (* guard true and in bounds: semantics unchanged *)
  let inputs = [ ("in", [| 9; 2 |]) ] in
  Alcotest.(check int) "same result when the guard is taken"
    (out0 ~inputs raw) (out0 ~inputs opt)

let test_unconditional_load_still_hoisted () =
  (* the speculation fix must not cost the profitable case: a load in
     the straight-line loop body still moves to the preheader *)
  let src = {|
int out[1];
int table[4];
int in[1];
void main() {
  table[0] = in[0];
  int s = 0;
  int i;
  for (i = 0; i < 50; i = i + 1) {
    s = s + table[0] + ((i > 25) ? i : 0);
  }
  out[0] = s;
}
|} in
  let raw = compile_raw src in
  let opt = Ir.Passes.loop_invariant_motion raw in
  let inputs = [ ("in", [| 3 |]) ] in
  Alcotest.(check int) "sum preserved" (out0 ~inputs raw) (out0 ~inputs opt);
  let loads cdfg =
    Array.fold_left ( + ) 0 (Interp.run ~inputs cdfg).Interp.mem_reads
  in
  Alcotest.(check bool) "load still hoisted" true (loads opt < loads raw)

let test_random_structured_semantics () =
  for seed = 200 to 212 do
    let src = Hypar_apps.Synth.random_structured_main ~seed ~depth:3 () in
    let raw = compile_raw src in
    let opt = Ir.Passes.optimize raw in
    Alcotest.(check int) (Printf.sprintf "seed %d" seed) (out0 raw) (out0 opt)
  done

let suite =
  [
    Alcotest.test_case "hoists invariant mul" `Quick test_hoists_invariant_mul;
    Alcotest.test_case "loop-carried not hoisted" `Quick test_loop_carried_not_hoisted;
    Alcotest.test_case "zero-trip safety" `Quick test_zero_trip_safety;
    Alcotest.test_case "loads hoisted" `Quick test_loads_hoisted_when_no_store;
    Alcotest.test_case "stores block hoisting" `Quick test_loads_not_hoisted_past_stores;
    Alcotest.test_case "nested loops" `Quick test_nested_loops_hoist_through;
    Alcotest.test_case "division never hoisted" `Quick test_division_never_hoisted;
    Alcotest.test_case "guarded load not speculated" `Quick
      test_guarded_load_not_speculated;
    Alcotest.test_case "unconditional load still hoisted" `Quick
      test_unconditional_load_still_hoisted;
    Alcotest.test_case "random structured programs" `Quick test_random_structured_semantics;
  ]
