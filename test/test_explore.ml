(* Unit tests for the Hypar_explore design-space exploration engine:
   axis parsing, Pareto-frontier correctness, cache-key stability,
   failed-point robustness and jobs-N determinism. *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Space = Hypar_explore.Space
module Cache = Hypar_explore.Cache
module Pool = Hypar_explore.Pool
module Pareto = Hypar_explore.Pareto
module Eval = Hypar_explore.Eval
module Driver = Hypar_explore.Driver
module Render = Hypar_explore.Render

let matmul =
  lazy
    (let n = 8 in
     let inputs =
       [
         ("a", Array.init (n * n) (fun i -> (i * 7) mod 23));
         ("b", Array.init (n * n) (fun i -> (i * 5) mod 19));
       ]
     in
     Flow.prepare ~name:"matmul8" ~inputs (Hypar_apps.Synth.matmul_source ~n))

let budget prepared =
  match
    Eval.evaluate prepared
      { Space.area = 1500; cgcs = 2; rows = 2; cols = 2; clock_ratio = 3;
        timing = max_int }
  with
  | Ok m -> m.Eval.initial.Engine.t_total / 2
  | Error msg -> Alcotest.fail msg

(* ---- axis parsing ------------------------------------------------------- *)

let check_axis s expected =
  match Space.axis_of_string s with
  | Ok vs -> Alcotest.(check (list int)) s expected vs
  | Error e -> Alcotest.failf "axis %S rejected: %s" s e

let test_axis_parsing () =
  check_axis "1500" [ 1500 ];
  check_axis "500,1500,5000" [ 500; 1500; 5000 ];
  check_axis "1..4" [ 1; 2; 3; 4 ];
  check_axis "500..2000:500" [ 500; 1000; 1500; 2000 ];
  check_axis "1,3..5,10" [ 1; 3; 4; 5; 10 ];
  check_axis " 2 , 4 " [ 2; 4 ];
  (* duplicates are preserved: the cache deduplicates, not the parser *)
  check_axis "1500,1500" [ 1500; 1500 ]

let test_axis_errors () =
  List.iter
    (fun s ->
      match Space.axis_of_string s with
      | Ok _ -> Alcotest.failf "axis %S should be rejected" s
      | Error _ -> ())
    [ ""; "abc"; "1,,2"; "5..1"; "1..9:0"; "1..9:-2" ]

let test_space_bounds () =
  let space =
    Space.make ~areas:[ 1; 2; 3 ] ~cgcs:[ 1; 2 ] ~max_points:5
      ~timings:[ 100 ] ()
  in
  Alcotest.(check int) "size" 6 (Space.size space);
  (match Space.points space with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "6 points should exceed max_points 5");
  match Space.points { space with Space.max_points = 6 } with
  | Ok pts -> Alcotest.(check int) "expanded" 6 (List.length pts)
  | Error e -> Alcotest.fail e

let test_enumeration_order () =
  let space =
    Space.make ~areas:[ 10; 20 ] ~cgcs:[ 1; 2 ] ~timings:[ 5 ] ()
  in
  match Space.points space with
  | Error e -> Alcotest.fail e
  | Ok pts ->
    Alcotest.(check (list (pair int int)))
      "areas outermost, cgcs inner"
      [ (10, 1); (10, 2); (20, 1); (20, 2) ]
      (List.map (fun (p : Space.point) -> (p.Space.area, p.Space.cgcs)) pts)

(* ---- Pareto frontier ---------------------------------------------------- *)

let test_pareto_dominance () =
  Alcotest.(check bool) "strictly better" true
    (Pareto.dominates [| 1; 1 |] [| 2; 2 |]);
  Alcotest.(check bool) "better on one axis" true
    (Pareto.dominates [| 1; 2 |] [| 2; 2 |]);
  Alcotest.(check bool) "worse on one axis" false
    (Pareto.dominates [| 1; 3 |] [| 2; 2 |]);
  Alcotest.(check bool) "equal does not dominate" false
    (Pareto.dominates [| 2; 2 |] [| 2; 2 |]);
  Alcotest.(check bool) "dominated" false
    (Pareto.dominates [| 3; 3 |] [| 2; 2 |])

let test_pareto_frontier () =
  let id x = x in
  let frontier pts = Pareto.frontier id pts in
  (* classic trade-off curve + one dominated point *)
  Alcotest.(check (list (array int)))
    "dominated point removed"
    [ [| 1; 9 |]; [| 5; 5 |]; [| 9; 1 |] ]
    (frontier [ [| 1; 9 |]; [| 5; 5 |]; [| 9; 1 |]; [| 6; 6 |] ]);
  (* ties: equal vectors never dominate each other, both stay *)
  Alcotest.(check (list (array int)))
    "ties all kept"
    [ [| 3; 3 |]; [| 3; 3 |] ]
    (frontier [ [| 3; 3 |]; [| 3; 3 |]; [| 4; 4 |] ]);
  (* degenerate cases *)
  Alcotest.(check (list (array int)))
    "single point is its own frontier" [ [| 7 |] ]
    (frontier [ [| 7 |] ]);
  Alcotest.(check (list (array int))) "empty" [] (frontier [])

let test_pareto_best_by () =
  Alcotest.(check (option int)) "min index" (Some 2)
    (Pareto.best_by (fun x -> x) [| 5; 3; 1; 4 |]);
  Alcotest.(check (option int)) "first on tie" (Some 0)
    (Pareto.best_by (fun x -> x) [| 2; 2; 2 |]);
  Alcotest.(check (option int)) "empty" None (Pareto.best_by (fun x -> x) [||])

(* ---- pool --------------------------------------------------------------- *)

let test_pool_matches_sequential () =
  let xs = Array.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Pool.map ~jobs:1 f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        seq (Pool.map ~jobs f xs))
    [ 2; 3; 8; 64 ]

(* ---- cache key stability ------------------------------------------------ *)

let test_point_key_stable () =
  let p =
    { Space.area = 1500; cgcs = 2; rows = 2; cols = 2; clock_ratio = 3;
      timing = 8000 }
  in
  (* the documented format: renderers, tests and cram output rely on it *)
  Alcotest.(check string) "point key" "a1500/k2/g2x2/r3/t8000"
    (Space.point_key p);
  Alcotest.(check string) "cache key" "d|a1500/k2/g2x2/r3/t8000"
    (Cache.key ~digest:"d" p)

let test_digest_stable_across_compiles () =
  let source = Hypar_apps.Synth.matmul_source ~n:4 in
  let d1 = Cache.digest_of_cdfg (Flow.prepare ~name:"m" source).Flow.cdfg in
  let d2 = Cache.digest_of_cdfg (Flow.prepare ~name:"m" source).Flow.cdfg in
  Alcotest.(check string) "same source, same digest" d1 d2;
  let other =
    Cache.digest_of_cdfg
      (Flow.prepare ~name:"m" (Hypar_apps.Synth.matmul_source ~n:5)).Flow.cdfg
  in
  Alcotest.(check bool) "different source, different digest" true (d1 <> other)

let test_cache_counters () =
  let c = Cache.create () in
  Alcotest.(check bool) "miss" true (Cache.find c "k" = None);
  Cache.add c "k" 1;
  Alcotest.(check bool) "hit" true (Cache.find c "k" = Some 1);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses

(* ---- driver: duplicates, failures, determinism -------------------------- *)

let test_duplicate_configs_hit_cache () =
  let prepared = Lazy.force matmul in
  let t = budget prepared in
  let space =
    Space.make ~areas:[ 1500; 1500; 1500 ] ~cgcs:[ 2 ] ~timings:[ t ] ()
  in
  match Driver.run prepared space with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "one unique evaluation" 1 s.Driver.cache.Cache.misses;
    Alcotest.(check int) "two served from cache" 2 s.Driver.cache.Cache.hits;
    Alcotest.(check bool) "first point computed" false s.Driver.results.(0).Driver.cached;
    Alcotest.(check bool) "later points cached" true s.Driver.results.(1).Driver.cached;
    (* cached points carry the same outcome *)
    Alcotest.(check bool) "outcomes shared" true
      (s.Driver.results.(0).Driver.outcome = s.Driver.results.(1).Driver.outcome)

let test_failed_point_recorded () =
  let prepared = Lazy.force matmul in
  let t = budget prepared in
  let space = Space.make ~areas:[ 0; 1500 ] ~cgcs:[ 2 ] ~timings:[ t ] () in
  match Driver.run prepared space with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "one failed" 1 (Driver.failed_count s);
    Alcotest.(check int) "one ok" 1 (Driver.ok_count s);
    Alcotest.(check bool) "not all failed" false (Driver.all_failed s);
    (match s.Driver.results.(0).Driver.outcome with
    | Error msg ->
      (* the message names the raising constructor and the point itself *)
      Alcotest.(check string) "validation message"
        (Printf.sprintf
           "Invalid_argument: Fpga.make: area must be positive [point %s]"
           (Space.point_key s.Driver.results.(0).Driver.point))
        msg
    | Ok _ -> Alcotest.fail "area 0 should fail");
    Alcotest.(check bool) "failed point never on the frontier" false
      s.Driver.pareto.(0)

let test_all_failed () =
  let prepared = Lazy.force matmul in
  let space = Space.make ~areas:[ 0; -5 ] ~cgcs:[ 2 ] ~timings:[ 100 ] () in
  match Driver.run prepared space with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "all failed" true (Driver.all_failed s);
    Alcotest.(check (option int)) "no best point" None s.Driver.best_time

let test_jobs_determinism () =
  let prepared = Lazy.force matmul in
  let t = budget prepared in
  let space =
    Space.make ~areas:[ 0; 500; 1500 ] ~cgcs:[ 1; 2 ] ~clock_ratios:[ 3 ]
      ~timings:[ t ] ()
  in
  let render jobs =
    match Driver.run ~jobs ~workload:"matmul8" prepared space with
    | Error e -> Alcotest.fail e
    | Ok s -> (Render.text s, Render.csv s, Render.json s, Render.markdown s)
  in
  let t1, c1, j1, m1 = render 1 in
  let t4, c4, j4, m4 = render 4 in
  Alcotest.(check string) "text jobs=4 == jobs=1" t1 t4;
  Alcotest.(check string) "csv jobs=4 == jobs=1" c1 c4;
  Alcotest.(check string) "json jobs=4 == jobs=1" j1 j4;
  Alcotest.(check string) "markdown jobs=4 == jobs=1" m1 m4

let test_best_and_frontier_sane () =
  let prepared = Lazy.force matmul in
  let t = budget prepared in
  let space =
    Space.make ~areas:[ 500; 1500; 5000 ] ~cgcs:[ 1; 2 ] ~timings:[ t ] ()
  in
  match Driver.run prepared space with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let n = Array.length s.Driver.results in
    Alcotest.(check int) "six points" 6 n;
    Alcotest.(check bool) "frontier non-empty" true
      (Array.exists (fun f -> f) s.Driver.pareto);
    (match s.Driver.best_time with
    | None -> Alcotest.fail "best t_total missing"
    | Some i -> (
      match s.Driver.results.(i).Driver.outcome with
      | Error _ -> Alcotest.fail "best points to a failed result"
      | Ok best ->
        Array.iter
          (fun (r : Driver.point_result) ->
            match r.Driver.outcome with
            | Ok m when m.Eval.met ->
              Alcotest.(check bool) "best t_total minimal among met" true
                (best.Eval.final.Engine.t_total
                <= m.Eval.final.Engine.t_total)
            | _ -> ())
          s.Driver.results))

let suite =
  [
    Alcotest.test_case "axis parsing" `Quick test_axis_parsing;
    Alcotest.test_case "axis errors" `Quick test_axis_errors;
    Alcotest.test_case "space bounds" `Quick test_space_bounds;
    Alcotest.test_case "enumeration order" `Quick test_enumeration_order;
    Alcotest.test_case "pareto dominance" `Quick test_pareto_dominance;
    Alcotest.test_case "pareto frontier" `Quick test_pareto_frontier;
    Alcotest.test_case "pareto best_by" `Quick test_pareto_best_by;
    Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "point key stable" `Quick test_point_key_stable;
    Alcotest.test_case "digest stable" `Quick test_digest_stable_across_compiles;
    Alcotest.test_case "cache counters" `Quick test_cache_counters;
    Alcotest.test_case "duplicates hit cache" `Quick test_duplicate_configs_hit_cache;
    Alcotest.test_case "failed point recorded" `Quick test_failed_point_recorded;
    Alcotest.test_case "all points failed" `Quick test_all_failed;
    Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
    Alcotest.test_case "best + frontier sane" `Quick test_best_and_frontier_sane;
  ]
