(* Unit tests for the resilience layer: fault-spec round-trips, degraded
   scheduling/binding, graceful engine degradation, deterministic retry
   and the crash-safe checkpoint journal. *)

module Ir = Hypar_ir
module Cgc = Hypar_coarsegrain.Cgc
module Schedule = Hypar_coarsegrain.Schedule
module Binding = Hypar_coarsegrain.Binding
module Platform = Hypar_core.Platform
module Engine = Hypar_core.Engine
module Flow = Hypar_core.Flow
module Fault = Hypar_resilience.Fault
module Spec = Hypar_resilience.Spec
module Degrade = Hypar_resilience.Degrade
module Delta = Hypar_resilience.Delta
module Retry = Hypar_resilience.Retry
module Journal = Hypar_resilience.Journal
module Space = Hypar_explore.Space
module Driver = Hypar_explore.Driver
module Render = Hypar_explore.Render

let platform () = List.hd (Platform.paper_configs ())

let parse_exn text =
  match Spec.of_string text with
  | Ok s -> s
  | Error e -> Alcotest.failf "spec rejected: %s" e

(* ---- spec parsing and printing ----------------------------------------- *)

let full_spec_text =
  {|# every directive once
seed 11
dead-node 0 1 1 mult
dead-node 1 0 0 both
dead-cgc 1
area-loss 10%
area-loss 250
comm-slowdown 150
transient 125 2
|}

let test_spec_round_trip () =
  let s = parse_exn full_spec_text in
  Alcotest.(check int) "seed" 11 s.Fault.seed;
  Alcotest.(check int) "fault count" 7 (List.length s.Fault.faults);
  let s' = parse_exn (Spec.to_text s) in
  Alcotest.(check bool) "to_text/of_string round-trips" true (s = s');
  (* printing again is a fixpoint *)
  Alcotest.(check string) "canonical text is stable" (Spec.to_text s)
    (Spec.to_text s')

let test_spec_errors_located () =
  let reject text needle =
    match Spec.of_string text with
    | Ok _ -> Alcotest.failf "spec %S should be rejected" text
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in %S" needle e)
        true
        (Str_contains.contains e needle)
  in
  reject "dead-node 0" "line 1";
  reject "seed 1\nwibble 3" "line 2";
  reject "comm-slowdown 50" "line 1";
  reject "transient 2000 1" "line 1";
  reject "dead-node 0 1 1 quux" "line 1"

let test_spec_json () =
  let s = parse_exn "seed 3\ndead-node 0 1 1 alu\ntransient 10 1" in
  let j = Spec.to_json s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Str_contains.contains j needle))
    [ {|"seed": 3|}; {|"dead-node"|}; {|"alu"|}; {|"transient"|} ]

(* ---- degradation -------------------------------------------------------- *)

let test_degrade_platform () =
  let s = parse_exn "dead-node 0 1 1 both\ndead-cgc 1" in
  match Degrade.apply s (platform ()) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check bool) "marked degraded" true (Platform.degraded p);
    Alcotest.(check bool) "name suffixed" true
      (Str_contains.contains p.Platform.name "[degraded]");
    (match p.Platform.cgc_health with
    | None -> Alcotest.fail "expected a health mask"
    | Some h ->
      let full = Cgc.usable_slots (Cgc.full_health p.Platform.cgc) in
      Alcotest.(check bool) "slots lost" true (Cgc.usable_slots h < full))

let test_degrade_strictness () =
  let s = parse_exn "dead-cgc 7" in
  (match Degrade.apply s (platform ()) with
  | Ok _ -> Alcotest.fail "out-of-range fault accepted strictly"
  | Error _ -> ());
  match Degrade.apply ~strict:false s (platform ()) with
  | Error e -> Alcotest.failf "non-strict should skip: %s" e
  | Ok p ->
    (* nothing applied: the platform is untouched *)
    Alcotest.(check bool) "not degraded" false (Platform.degraded p)

let test_degrade_area_and_comm () =
  let s = parse_exn "area-loss 50%\ncomm-slowdown 200" in
  let before = platform () in
  match Degrade.apply s before with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "area halved"
      (before.Platform.fpga.Hypar_finegrain.Fpga.area / 2)
      p.Platform.fpga.Hypar_finegrain.Fpga.area;
    Alcotest.(check int) "words cost double"
      (2 * before.Platform.comm.Hypar_core.Comm.cycles_per_word)
      p.Platform.comm.Hypar_core.Comm.cycles_per_word;
    (* the input platform is never mutated *)
    Alcotest.(check bool) "pure transform" false (Platform.degraded before)

(* ---- dead nodes never host operations ----------------------------------- *)

let chained_mul_dfg () =
  Ir.Builder.dfg_of (fun b ->
      let a = Ir.Builder.fresh_var b "a" in
      let t = Ir.Builder.mul b "t" (Ir.Builder.var a) (Ir.Builder.var a) in
      ignore
        (Ir.Builder.bin b Ir.Types.Add "u" (Ir.Builder.var t)
           (Ir.Builder.imm 1)))

let test_dead_node_avoided () =
  let cgc = Cgc.two_by_two 2 in
  let dfg = chained_mul_dfg () in
  let s0 = Schedule.schedule cgc dfg in
  let b0 = Binding.bind cgc dfg s0 in
  (* kill the exact node the healthy binding chains into *)
  let tail =
    List.find (fun (s : Binding.slot) -> s.row = 1) b0.Binding.slots
  in
  let health =
    Cgc.kill_node cgc (Cgc.full_health cgc) ~cgc:tail.Binding.cgc
      ~row:tail.Binding.row ~col:tail.Binding.col
  in
  Alcotest.(check bool) "healthy binding hits dead hardware" false
    (Binding.is_valid ~health cgc b0);
  let s1 = Schedule.schedule ~health cgc dfg in
  Alcotest.(check bool) "degraded schedule valid under health" true
    (Schedule.is_valid ~health cgc dfg s1);
  let b1 = Binding.bind cgc dfg s1 in
  Alcotest.(check bool) "degraded binding avoids dead node" true
    (Binding.is_valid ~health cgc b1)

(* ---- graceful engine degradation (OFDM acceptance scenario) ------------- *)

let test_ofdm_degraded_partition () =
  let prepared = Hypar_apps.Ofdm.prepared () in
  let s = parse_exn "seed 1\ndead-node 0 0 0 both\ndead-cgc 1" in
  match
    Delta.run s (platform ())
      ~timing_constraint:Hypar_apps.Ofdm.timing_constraint
      prepared.Flow.cdfg prepared.Flow.profile
  with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check bool) "degradation never speeds things up" true
      (d.Delta.t_total_delta >= 0);
    Alcotest.(check bool) "slowdown percent consistent" true
      (d.Delta.slowdown_percent >= 0.);
    (* every skip carries a typed reason *)
    List.iter
      (fun (_, reason) ->
        match reason with
        | Engine.Not_cgc_executable | Engine.No_cgc_capacity -> ())
      d.Delta.degraded.Engine.skipped

(* ---- retry -------------------------------------------------------------- *)

let test_retry_deterministic () =
  let log = ref [] in
  let f attempt =
    log := attempt :: !log;
    if attempt <= 2 then Error (Printf.sprintf "boom %d" attempt)
    else Ok attempt
  in
  (match Retry.run ~retries:2 f with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "wrong attempt %d" n
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list int)) "attempts in order" [ 1; 2; 3 ] (List.rev !log);
  (match Retry.run ~retries:1 f with
  | Error "boom 2" -> ()
  | Error e -> Alcotest.failf "wrong error %s" e
  | Ok _ -> Alcotest.fail "should exhaust retries");
  match Retry.run ~retries:(-1) f with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative retries accepted"

let test_transient_deterministic () =
  let s = parse_exn "seed 5\ntransient 1000 2" in
  let fails attempt =
    Fault.transient_should_fail s ~key:"a500/k1/g2x2/r3/t8000" ~attempt
  in
  Alcotest.(check bool) "attempt 1 fails" true (fails 1);
  Alcotest.(check bool) "attempt 2 fails" true (fails 2);
  Alcotest.(check bool) "attempt 3 exceeds max_failures" false (fails 3);
  (* pure function of (seed, key, attempt) *)
  Alcotest.(check bool) "repeatable" (fails 1) (fails 1);
  let other = parse_exn "seed 6\ntransient 500 1" in
  let sample key =
    Fault.transient_should_fail other ~key ~attempt:1
  in
  (* with permille 500 some keys fail and some do not *)
  let keys = List.init 64 (fun i -> Printf.sprintf "k%d" i) in
  let failures = List.length (List.filter sample keys) in
  Alcotest.(check bool) "permille 500 is neither 0 nor 1" true
    (failures > 0 && failures < 64)

(* ---- journal ------------------------------------------------------------ *)

let temp_path () = Filename.temp_file "hypar_test" ".journal"

let test_journal_round_trip () =
  let path = temp_path () in
  (match Journal.create ~header:"test v1" path with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Journal.append j "one";
    Journal.append j "two with spaces";
    Journal.close j);
  (match Journal.load ~header:"test v1" path with
  | Error e -> Alcotest.fail e
  | Ok entries ->
    Alcotest.(check (list string)) "entries in order"
      [ "one"; "two with spaces" ] entries);
  (match Journal.load ~header:"other v2" path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong header accepted");
  Sys.remove path;
  match Journal.load ~header:"test v1" path with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing file should be empty"
  | Error e -> Alcotest.failf "missing file should be Ok []: %s" e

let test_journal_torn_line () =
  let path = temp_path () in
  (match Journal.create ~header:"test v1" path with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Journal.append j "complete";
    Journal.close j);
  (* simulate a crash mid-append: a partial entry with no newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "13:half an ent";
  close_out oc;
  (match Journal.load ~header:"test v1" path with
  | Error e -> Alcotest.fail e
  | Ok entries ->
    Alcotest.(check (list string)) "torn line dropped" [ "complete" ] entries);
  Sys.remove path

(* ---- checkpoint resume is byte-identical -------------------------------- *)

let small_prepared =
  lazy
    (Flow.prepare ~name:"resil"
       {|
int in[4];
int out[4];
void main() {
  int i;
  for (i = 0; i < 4; i++) { out[i] = in[i] * 3 + 1; }
}
|})

let test_resume_byte_identical () =
  let prepared = Lazy.force small_prepared in
  let space =
    Space.make ~areas:[ 500; 1500 ] ~cgcs:[ 1; 2 ] ~timings:[ 4000 ] ()
  in
  let path = temp_path () in
  let fresh =
    match Driver.run ~checkpoint:path prepared space with
    | Ok t -> Render.csv t
    | Error e -> Alcotest.fail e
  in
  (* crash simulation: drop the journal's tail and tear the last line *)
  let lines =
    In_channel.with_open_text path (fun ic ->
        String.split_on_char '\n' (In_channel.input_all ic))
  in
  let keep = List.filteri (fun i _ -> i < 3) lines in
  let torn =
    match List.nth_opt lines 3 with
    | Some l when String.length l > 5 -> [ String.sub l 0 5 ]
    | _ -> []
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (String.concat "\n" (keep @ torn)));
  let resumed =
    match Driver.run ~checkpoint:path ~resume:true prepared space with
    | Ok t -> Render.csv t
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "resume renders byte-identically" fresh resumed;
  Sys.remove path

let test_explore_with_faults_and_retries () =
  let prepared = Lazy.force small_prepared in
  let space = Space.make ~areas:[ 1500 ] ~cgcs:[ 2 ] ~timings:[ 4000 ] () in
  let faults = parse_exn "seed 9\ndead-node 0 1 1 both\ntransient 1000 2" in
  (* without retries the injected transient failure surfaces... *)
  (match Driver.run ~faults prepared space with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check int) "transient fault fails the point" 1
      (Driver.failed_count t));
  (* ...and bounded retry rides through it deterministically *)
  match Driver.run ~faults ~retries:2 prepared space with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check int) "retries absorb the transient" 0
      (Driver.failed_count t);
    Alcotest.(check int) "all points ok" 1 (Driver.ok_count t)

let suite =
  [
    Alcotest.test_case "spec round trip" `Quick test_spec_round_trip;
    Alcotest.test_case "spec errors located" `Quick test_spec_errors_located;
    Alcotest.test_case "spec json" `Quick test_spec_json;
    Alcotest.test_case "degrade platform" `Quick test_degrade_platform;
    Alcotest.test_case "degrade strictness" `Quick test_degrade_strictness;
    Alcotest.test_case "degrade area and comm" `Quick test_degrade_area_and_comm;
    Alcotest.test_case "dead node avoided" `Quick test_dead_node_avoided;
    Alcotest.test_case "ofdm degraded partition" `Quick
      test_ofdm_degraded_partition;
    Alcotest.test_case "retry deterministic" `Quick test_retry_deterministic;
    Alcotest.test_case "transient deterministic" `Quick
      test_transient_deterministic;
    Alcotest.test_case "journal round trip" `Quick test_journal_round_trip;
    Alcotest.test_case "journal torn line" `Quick test_journal_torn_line;
    Alcotest.test_case "resume byte identical" `Quick
      test_resume_byte_identical;
    Alcotest.test_case "explore faults and retries" `Quick
      test_explore_with_faults_and_retries;
  ]
