(* Unit tests for Hypar_obs: span nesting/balance, counter aggregation,
   the disabled fast path, collect/replay merging and export roundtrips.
   Every test that records events injects a fake clock so the streams
   (and hence the assertions) are fully deterministic. *)

module Obs = Hypar_obs
module Event = Obs.Event
module Sink = Obs.Sink
module Span = Obs.Span
module Counter = Obs.Counter
module Export = Obs.Export
module Stats = Obs.Stats

(* enable the sink around [f] under a fresh fake clock, and always leave
   it disabled and empty for the next test *)
let recording f =
  Sink.clear ();
  Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Sink.disable ();
      Sink.clear ())
    (fun () -> Sink.with_clock (Obs.Clock.counter ()) f)

let summary_exn events =
  match Span.validate events with
  | Ok s -> s
  | Error msg -> Alcotest.failf "expected a valid stream: %s" msg

let test_nesting () =
  let events =
    recording (fun () ->
        Span.with_ "outer" (fun () ->
            Span.with_ "inner" (fun () -> ());
            Span.with_ "inner" (fun () -> ()));
        Sink.events ())
  in
  let s = summary_exn events in
  Alcotest.(check int) "events" 6 s.Span.events;
  Alcotest.(check int) "spans" 3 s.Span.spans;
  Alcotest.(check int) "max depth" 2 s.Span.max_depth;
  Alcotest.(check (list (pair string int)))
    "per-name counts"
    [ ("inner", 2); ("outer", 1) ]
    s.Span.names

let test_fake_clock_deterministic () =
  let run () =
    recording (fun () ->
        Span.with_ "a" (fun () -> Span.with_ "b" (fun () -> ()));
        Export.chrome (Sink.events ()))
  in
  Alcotest.(check string) "two runs identical" (run ()) (run ());
  let ts =
    recording (fun () ->
        Span.with_ "a" (fun () -> Span.with_ "b" (fun () -> ()));
        List.map (fun (e : Event.t) -> e.ts) (Sink.events ()))
  in
  Alcotest.(check (list (float 0.0))) "counter clock ticks" [ 0.; 1.; 2.; 3. ] ts

let test_unbalanced_detected () =
  let tid = Sink.tid () in
  let beg name ts = { Event.name; ts; tid; kind = Event.Begin { cat = "t"; args = [] } } in
  let end_ name ts = { Event.name; ts; tid; kind = Event.End } in
  (match Span.validate [ beg "a" 0. ] with
  | Ok _ -> Alcotest.fail "unclosed span accepted"
  | Error _ -> ());
  (match Span.validate [ beg "a" 0.; end_ "b" 1. ] with
  | Ok _ -> Alcotest.fail "mismatched end accepted"
  | Error _ -> ());
  match Span.validate [ end_ "a" 0. ] with
  | Ok _ -> Alcotest.fail "stray end accepted"
  | Error _ -> ()

let test_exception_safety () =
  let events =
    recording (fun () ->
        (try Span.with_ "boom" (fun () -> failwith "inside") with Failure _ -> ());
        Sink.events ())
  in
  let s = summary_exn events in
  Alcotest.(check int) "span closed despite raise" 1 s.Span.spans

let test_counter_aggregation () =
  let events =
    recording (fun () ->
        Counter.incr "moves";
        Counter.incr ~by:3 "moves";
        Counter.incr "evals";
        Counter.set "len" 7;
        Counter.set "len" 4;
        Sink.events ())
  in
  Alcotest.(check (list (pair string int)))
    "totals sum deltas"
    [ ("moves", 4); ("evals", 1) ]
    (Counter.totals events);
  Alcotest.(check (list (pair string int)))
    "gauges keep last write"
    [ ("len", 4) ]
    (Counter.gauges events)

let test_disabled_fast_path () =
  Sink.clear ();
  Alcotest.(check bool) "disabled by default" false (Sink.enabled ());
  let r = Span.with_ "off" (fun () -> 41 + 1) in
  Alcotest.(check int) "span body still runs" 42 r;
  Counter.incr "off";
  Counter.set "off" 9;
  Span.instant "off";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Sink.events ()));
  (* the counter path must not allocate when disabled: warm up, then
     watch minor-heap words over 10k increments *)
  Counter.incr "hot";
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Counter.incr "hot"
  done;
  let per_call = (Gc.minor_words () -. w0) /. 10_000. in
  if per_call > 0.5 then
    Alcotest.failf "disabled Counter.incr allocates %.2f words/call" per_call

let test_collect_replay () =
  recording (fun () ->
      Span.with_ "kept" (fun () -> ());
      let (), captured =
        Sink.collect (fun () -> Span.with_ "worker" (fun () -> ()))
      in
      Alcotest.(check int) "capture holds the worker span" 2 (List.length captured);
      Alcotest.(check int)
        "global unaffected by collect" 2
        (List.length (Sink.events ()));
      Sink.replay captured;
      let s = summary_exn (Sink.events ()) in
      Alcotest.(check (list (pair string int)))
        "replayed after kept"
        [ ("kept", 1); ("worker", 1) ]
        s.Span.names)

let test_replay_rewrites_tid () =
  recording (fun () ->
      let captured =
        Domain.join
          (Domain.spawn (fun () ->
               snd (Sink.collect (fun () -> Span.with_ "remote" (fun () -> ())))))
      in
      let remote_tids =
        List.sort_uniq compare (List.map (fun (e : Event.t) -> e.tid) captured)
      in
      Alcotest.(check bool)
        "captured on another domain" false
        (remote_tids = [ Sink.tid () ]);
      Sink.replay captured;
      List.iter
        (fun (e : Event.t) ->
          Alcotest.(check int) "tid rewritten to replayer" (Sink.tid ()) e.tid)
        (Sink.events ()))

let test_chrome_roundtrip () =
  let events =
    recording (fun () ->
        Span.with_ ~cat:"t" ~args:[ ("k", Event.Int 3); ("s", Event.Str "x\"y") ]
          "outer"
          (fun () ->
            Counter.incr ~by:2 "c";
            Span.instant "mark");
        Sink.events ())
  in
  match Export.parse_chrome (Export.chrome events) with
  | Error msg -> Alcotest.failf "parse_chrome failed: %s" msg
  | Ok parsed ->
    let s = summary_exn parsed in
    Alcotest.(check (list (pair string int)))
      "span names survive" [ ("outer", 1) ] s.Span.names;
    Alcotest.(check int) "all events survive" (List.length events)
      (List.length parsed)

let test_parse_chrome_rejects_garbage () =
  (match Export.parse_chrome "not json" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Export.parse_chrome "{\"traceEvents\":41}" with
  | Ok _ -> Alcotest.fail "accepted non-array traceEvents"
  | Error _ -> ()

let test_stats () =
  let events =
    recording (fun () ->
        (* counter clock: a opens at 0, b spans [1,2], a closes at 3 *)
        Span.with_ "a" (fun () -> Span.with_ "b" (fun () -> ()));
        Counter.incr ~by:5 "n";
        Sink.events ())
  in
  (match Stats.spans events with
  | [ a; b ] ->
    Alcotest.(check string) "outer first-completion order" "b" a.Stats.name;
    Alcotest.(check string) "then outer" "a" b.Stats.name;
    Alcotest.(check (float 0.001)) "b total" 1.0 a.Stats.total_us;
    Alcotest.(check (float 0.001)) "a total" 3.0 b.Stats.total_us;
    Alcotest.(check (float 0.001)) "a self excludes b" 2.0 b.Stats.self_us
  | l -> Alcotest.failf "expected 2 span stats, got %d" (List.length l));
  let rendered = Stats.render events in
  List.iter
    (fun needle ->
      if not (Str_contains.contains rendered needle) then
        Alcotest.failf "stats output misses %S:\n%s" needle rendered)
    [ "== hypar stats =="; "a"; "b"; "n" ]

let suite =
  [
    Alcotest.test_case "span nesting and balance" `Quick test_nesting;
    Alcotest.test_case "deterministic under fake clock" `Quick
      test_fake_clock_deterministic;
    Alcotest.test_case "unbalanced streams rejected" `Quick
      test_unbalanced_detected;
    Alcotest.test_case "end emitted on exception" `Quick test_exception_safety;
    Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
    Alcotest.test_case "disabled sink fast path" `Quick test_disabled_fast_path;
    Alcotest.test_case "collect/replay merge" `Quick test_collect_replay;
    Alcotest.test_case "replay rewrites tids" `Quick test_replay_rewrites_tid;
    Alcotest.test_case "chrome export roundtrip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "parser rejects garbage" `Quick
      test_parse_chrome_rejects_garbage;
    Alcotest.test_case "stats aggregation" `Quick test_stats;
  ]
