Differential fuzzing is deterministic: the same seed yields the same
report, byte for byte, regardless of how the campaign is parallelised.

  $ hypar fuzz --seed 5 --count 20 > a.txt
  $ hypar fuzz --seed 5 --count 20 > b.txt
  $ cmp a.txt b.txt
  $ hypar fuzz --seed 5 --count 20 --jobs 2 > c.txt
  $ cmp a.txt c.txt
  $ cat a.txt
  hypar fuzz: seed 5, 20 programs, safe grammar
  passes: 20
  divergences: 0
  crashes: 0

The JSON report is equally stable, and carries the same counters.

  $ hypar fuzz --seed 5 --count 20 --format json > a.json
  $ hypar fuzz --seed 5 --count 20 --jobs 2 --format json > b.json
  $ cmp a.json b.json
  $ cat a.json
  {"seed":5,"executed":20,"unsafe":false,"passes":20,"divergences":0,"crashes":0,"per_oracle":{},"failures":[]}

A known divergence (injected: any compiling program that stores through
g0 is flagged) is caught, auto-shrunk to a minimal reproducer that still
compiles, and persisted to the corpus directory.

  $ hypar fuzz --seed 3 --count 8 --fail-on 'g0[(' --corpus out -o full.txt 2> written.log
  [1]
  $ sort written.log
  hypar: wrote out/auto-1152348878068853744.mc
  hypar: wrote out/auto-1439864461283335670.mc
  hypar: wrote out/auto-1925166088503460895.mc
  hypar: wrote out/auto-2245037532148206864.mc
  hypar: wrote out/auto-2682605655378798159.mc
  hypar: wrote out/auto-2772098632647484146.mc
  hypar: wrote out/auto-3309500459903265760.mc
  hypar: wrote out/auto-388047482460792794.mc
  $ tail -n 12 full.txt
      void main() {
        g0[(0 & 0)] = 0;
      }
  case 7 (seed 2682605655378798159): injected
    oracle: injected
    detail: source contains "g0[("
    reduced reproducer:
      int32 g0[32];
      
      void main() {
        g0[(~0)] = 0;
      }

Replaying the persisted reproducers runs the real oracle matrix — the
injected signature is synthetic, so the entries replay clean.

  $ hypar fuzz --replay out
  corpus auto-1152348878068853744: pass
  corpus auto-1439864461283335670: pass
  corpus auto-1925166088503460895: pass
  corpus auto-2245037532148206864: pass
  corpus auto-2682605655378798159: pass
  corpus auto-2772098632647484146: pass
  corpus auto-3309500459903265760: pass
  corpus auto-388047482460792794: pass
  replayed 8 entries, 0 failing

The checked-in crash corpus replays green.

  $ hypar fuzz --replay ../corpus
  corpus backend-error-parity: pass
  corpus entry-back-edge: pass
  corpus fuel-parity: pass
  corpus helper-call-chain: pass
  corpus licm-guarded-load-const-index: pass
  corpus licm-guarded-load-scalar-index: pass
  corpus opt-algebra: pass
  replayed 7 entries, 0 failing
