(* Property-based tests (QCheck) over the core invariants:
   - DFG levelling and well-formedness on random DFGs;
   - Figure-3 temporal partitioning validity, coverage and area bounds;
   - CGC schedule validity and resource bounds;
   - optimisation passes preserve program semantics;
   - the interpreter's block/edge accounting is consistent;
   - Eq. 2 accounting holds for arbitrary moved sets. *)

module Ir = Hypar_ir
module Temporal = Hypar_finegrain.Temporal
module Fpga = Hypar_finegrain.Fpga
module Schedule = Hypar_coarsegrain.Schedule
module Binding = Hypar_coarsegrain.Binding
module Cgc = Hypar_coarsegrain.Cgc
module Synth = Hypar_apps.Synth
module Driver = Hypar_minic.Driver
module Interp = Hypar_profiling.Interp

let dfg_arb =
  QCheck.make
    ~print:(fun (seed, nodes) -> Printf.sprintf "seed=%d nodes=%d" seed nodes)
    QCheck.Gen.(pair (int_range 1 10_000) (int_range 1 150))

let prop_dfg_levels =
  QCheck.Test.make ~name:"dfg: asap <= alap <= max_level, forward edges"
    ~count:60 dfg_arb (fun (seed, nodes) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      let asap = Ir.Dfg.asap dfg and alap = Ir.Dfg.alap dfg in
      let ml = Ir.Dfg.max_level dfg in
      Ir.Dfg.is_well_formed dfg
      && Array.for_all (fun l -> l >= 1 && l <= ml) asap
      && Array.to_list asap
         |> List.mapi (fun i a -> a <= alap.(i) && alap.(i) <= ml)
         |> List.for_all Fun.id)

let prop_temporal_valid =
  QCheck.Test.make ~name:"temporal: valid, covering, within area" ~count:60
    (QCheck.pair dfg_arb (QCheck.make QCheck.Gen.(int_range 100 4000)))
    (fun ((seed, nodes), area) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      let fpga = Fpga.make ~area () in
      let size = Fpga.op_area fpga in
      let tp = Temporal.partition ~area ~size dfg in
      let covered =
        List.fold_left
          (fun acc (p : Temporal.partition) -> acc + List.length p.node_ids)
          0 tp.Temporal.partitions
      in
      let within_area =
        List.for_all
          (fun (p : Temporal.partition) ->
            (* only single oversized nodes may exceed the budget *)
            p.area_used <= area || List.length p.node_ids = 1)
          tp.Temporal.partitions
      in
      Temporal.is_valid dfg tp && covered = Ir.Dfg.node_count dfg && within_area)

let prop_temporal_monotone =
  QCheck.Test.make ~name:"temporal: partition count decreases with area"
    ~count:40 dfg_arb (fun (seed, nodes) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      let count area =
        let fpga = Fpga.make ~area () in
        Temporal.count (Temporal.partition ~area ~size:(Fpga.op_area fpga) dfg)
      in
      count 300 >= count 1200 && count 1200 >= count 6000)

let prop_schedule_valid =
  QCheck.Test.make ~name:"schedule: valid under all constraints" ~count:60
    (QCheck.pair dfg_arb (QCheck.make QCheck.Gen.(int_range 1 4)))
    (fun ((seed, nodes), k) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      QCheck.assume (Schedule.supported dfg);
      let cgc = Cgc.two_by_two k in
      let s = Schedule.schedule cgc dfg in
      Schedule.is_valid cgc dfg s)

let prop_binding_valid =
  QCheck.Test.make ~name:"binding: physical placement is conflict-free"
    ~count:40 dfg_arb (fun (seed, nodes) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      QCheck.assume (Schedule.supported dfg);
      let cgc = Cgc.two_by_two 2 in
      let s = Schedule.schedule cgc dfg in
      Binding.is_valid cgc (Binding.bind cgc dfg s))

let prop_more_cgcs_never_hurt =
  QCheck.Test.make ~name:"schedule: makespan monotone in CGC count" ~count:40
    dfg_arb (fun (seed, nodes) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      QCheck.assume (Schedule.supported dfg);
      let m k = (Schedule.schedule (Cgc.two_by_two k) dfg).Schedule.makespan in
      m 3 <= m 2)

let prop_passes_preserve_semantics =
  QCheck.Test.make ~name:"passes: simplify preserves the computed value"
    ~count:40
    (QCheck.make
       ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d ops=%d" seed ops)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 1 60)))
    (fun (seed, ops) ->
      let src = Synth.random_straightline_main ~seed ~ops () in
      let raw = Driver.compile_exn ~simplify:false src in
      let simplified = Ir.Passes.simplify raw in
      let out cdfg = (Interp.array_exn (Interp.run cdfg) "out").(0) in
      out raw = out simplified)

let prop_structured_programs_roundtrip =
  QCheck.Test.make ~name:"frontend: structured programs compile and run"
    ~count:30
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 1 4)))
    (fun (seed, depth) ->
      let src = Synth.random_structured_main ~seed ~depth () in
      let raw = Driver.compile_exn ~simplify:false src in
      let simplified = Ir.Passes.simplify raw in
      let out cdfg = (Interp.array_exn (Interp.run cdfg) "out").(0) in
      out raw = out simplified)

let prop_edge_block_consistency =
  QCheck.Test.make ~name:"interp: edge counts sum to block frequencies"
    ~count:30
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 1 4)))
    (fun (seed, depth) ->
      let src = Synth.random_structured_main ~seed ~depth () in
      let cdfg = Driver.compile_exn src in
      let r = Interp.run cdfg in
      let incoming = Array.make (Ir.Cdfg.block_count cdfg) 0 in
      List.iter
        (fun (((_, dst), c) : (int * int) * int) ->
          incoming.(dst) <- incoming.(dst) + c)
        r.Interp.edge_freq;
      let entry = Ir.Cfg.entry (Ir.Cdfg.cfg cdfg) in
      Array.to_list r.Interp.exec_freq
      |> List.mapi (fun i freq ->
             if i = entry then incoming.(i) = freq - 1 else incoming.(i) = freq)
      |> List.for_all Fun.id)

let prop_engine_eq2 =
  QCheck.Test.make ~name:"engine: Eq. 2 holds for every step" ~count:15
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 2 4)))
    (fun (seed, depth) ->
      let src = Synth.random_structured_main ~seed ~depth () in
      let prepared = Hypar_core.Flow.prepare ~name:"prop" src in
      let platform = List.hd (Hypar_core.Platform.paper_configs ()) in
      let r = Hypar_core.Flow.partition platform ~timing_constraint:1 prepared in
      let ok (x : Hypar_core.Engine.times) =
        x.Hypar_core.Engine.t_total
        = x.Hypar_core.Engine.t_fpga + x.Hypar_core.Engine.t_coarse
          + x.Hypar_core.Engine.t_comm
      in
      ok r.Hypar_core.Engine.initial
      && List.for_all
           (fun (s : Hypar_core.Engine.step) -> ok s.Hypar_core.Engine.times)
           r.Hypar_core.Engine.steps)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize: to_string/of_string round trip" ~count:25
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 1 4)))
    (fun (seed, depth) ->
      let src = Synth.random_structured_main ~seed ~depth () in
      let cdfg = Driver.compile_exn src in
      let back = Ir.Serialize.of_string (Ir.Serialize.to_string cdfg) in
      Array.to_list (Ir.Cfg.blocks (Ir.Cdfg.cfg cdfg))
      = Array.to_list (Ir.Cfg.blocks (Ir.Cdfg.cfg back))
      && Ir.Cdfg.arrays cdfg = Ir.Cdfg.arrays back)

let prop_best_fit_valid_and_no_worse =
  QCheck.Test.make ~name:"temporal: backfill valid and never worse" ~count:40
    dfg_arb (fun (seed, nodes) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      let fpga = Fpga.make ~area:1200 () in
      let size = Fpga.op_area fpga in
      let paper = Temporal.partition ~area:1200 ~size dfg in
      let bf = Temporal.partition_best_fit ~area:1200 ~size dfg in
      Temporal.is_valid dfg bf && Temporal.count bf <= Temporal.count paper)

let prop_bitstream_verifies =
  QCheck.Test.make ~name:"bitstream: generated streams always verify" ~count:40
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d ops=%d" seed n)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 1 20)))
    (fun (seed, n) ->
      let next = ref seed in
      let rand bound =
        next := ((!next * 1103515245) + 12345) land 0x3FFFFFFF;
        1 + (!next mod bound)
      in
      let fpga = Fpga.make ~area:4000 () in
      let device = Hypar_finegrain.Bitstream.device_of_fpga fpga in
      let op_areas = List.init n (fun _ -> rand 64) in
      match Hypar_finegrain.Bitstream.generate device ~op_areas with
      | s ->
        Hypar_finegrain.Bitstream.verify s
        && Hypar_finegrain.Bitstream.reconfig_cycles s > 0
      | exception Invalid_argument _ -> true)

let prop_gantt_row_count =
  QCheck.Test.make ~name:"binding: gantt covers every node op" ~count:25
    dfg_arb (fun (seed, nodes) ->
      let dfg = Synth.random_dfg ~seed ~nodes () in
      QCheck.assume (Schedule.supported dfg);
      let cgc = Cgc.two_by_two 2 in
      let s = Schedule.schedule cgc dfg in
      let b = Binding.bind cgc dfg s in
      let gantt = Binding.render_gantt cgc dfg s b in
      (* every physical slot appears as a labelled row *)
      String.length gantt > 0
      && List.length (String.split_on_char '\n' gantt)
         >= (Cgc.node_slots cgc + cgc.Cgc.mem_ports))

module Obs = Hypar_obs

let with_recording f =
  Obs.Sink.clear ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ())
    (fun () -> Obs.Sink.with_clock (Obs.Clock.counter ()) f)

(* Random span trees with interleaved counter increments: the recorded
   stream must be properly nested (every end closes the most recent open
   begin), the span count must match the executed tree, and each counter
   total must equal the sum of its per-node increments. *)
let prop_obs_random_trees =
  QCheck.Test.make ~name:"obs: random span trees balanced, totals add up"
    ~count:60
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d nodes=%d" seed n)
       QCheck.Gen.(pair (int_range 1 10_000) (int_range 1 60)))
    (fun (seed, n) ->
      let next = ref seed in
      let rand bound =
        next := ((!next * 1103515245) + 12345) land 0x3FFFFFFF;
        !next mod bound
      in
      let budget = ref n in
      let executed = ref 0 in
      let increments : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let rec node depth =
        if !budget > 0 then begin
          decr budget;
          incr executed;
          Obs.Span.with_ (Printf.sprintf "d%d" depth) (fun () ->
              let name = Printf.sprintf "c%d" (rand 3) in
              let by = 1 + rand 5 in
              Obs.Counter.incr ~by name;
              Hashtbl.replace increments name
                (by + Option.value (Hashtbl.find_opt increments name) ~default:0);
              for _ = 1 to rand 3 do
                node (depth + 1)
              done)
        end
      in
      let events =
        with_recording (fun () ->
            while !budget > 0 do
              node 0
            done;
            Obs.Sink.events ())
      in
      match Obs.Span.validate events with
      | Error _ -> false
      | Ok s ->
        let totals = Obs.Counter.totals events in
        s.Obs.Span.spans = !executed
        && List.length totals = Hashtbl.length increments
        && List.for_all
             (fun (name, total) -> Hashtbl.find_opt increments name = Some total)
             totals)

(* The instrumented production pipeline itself must emit a well-nested
   stream for arbitrary compiled programs. *)
let prop_obs_pipeline_balanced =
  QCheck.Test.make ~name:"obs: real pipeline traces are balanced" ~count:10
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 1 100_000) (int_range 1 3)))
    (fun (seed, depth) ->
      let src = Synth.random_structured_main ~seed ~depth () in
      let events =
        with_recording (fun () ->
            let prepared = Hypar_core.Flow.prepare ~name:"prop" src in
            let platform = List.hd (Hypar_core.Platform.paper_configs ()) in
            ignore
              (Hypar_core.Flow.partition platform ~timing_constraint:1 prepared);
            Obs.Sink.events ())
      in
      match Obs.Span.validate events with
      | Ok s -> s.Obs.Span.spans > 0
      | Error _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dfg_levels;
      prop_temporal_valid;
      prop_temporal_monotone;
      prop_schedule_valid;
      prop_binding_valid;
      prop_more_cgcs_never_hurt;
      prop_passes_preserve_semantics;
      prop_structured_programs_roundtrip;
      prop_edge_block_consistency;
      prop_engine_eq2;
      prop_serialize_roundtrip;
      prop_best_fit_valid_and_no_worse;
      prop_bitstream_verifies;
      prop_gantt_row_count;
      prop_obs_random_trees;
      prop_obs_pipeline_balanced;
    ]
