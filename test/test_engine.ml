(* Unit tests for the partitioning engine (the Figure-2 flow). *)

module Ir = Hypar_ir
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Flow = Hypar_core.Flow
module Fpga = Hypar_finegrain.Fpga
module Cgc = Hypar_coarsegrain.Cgc

let platform ?(area = 1500) ?(cgcs = 2) () =
  Platform.make ~fpga:(Fpga.make ~area ()) ~cgc:(Cgc.two_by_two cgcs) ()

let hot_loop_src = {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 5000; i = i + 1) {
    s = s + i * i + (i >> 1);
  }
  out[0] = s;
}
|}

let prepared_hot = lazy (Flow.prepare ~name:"hot" hot_loop_src)

let test_early_exit () =
  (* a huge budget is met by the all-FPGA mapping: no kernels move *)
  let r =
    Flow.partition (platform ()) ~timing_constraint:1_000_000_000
      (Lazy.force prepared_hot)
  in
  Alcotest.(check bool) "met" true (Engine.met r);
  (match r.Engine.status with
  | Engine.Met_without_partitioning -> ()
  | Engine.Met_after _ | Engine.Infeasible -> Alcotest.fail "expected early exit");
  Alcotest.(check (list int)) "nothing moved" [] r.Engine.moved;
  Alcotest.(check int) "no steps" 0 (List.length r.Engine.steps)

let test_moves_hot_kernel () =
  let prepared = Lazy.force prepared_hot in
  let all_fine =
    (Flow.partition (platform ()) ~timing_constraint:max_int prepared)
      .Engine.initial
  in
  let budget = all_fine.Engine.t_total / 3 in
  let r = Flow.partition (platform ()) ~timing_constraint:budget prepared in
  Alcotest.(check bool) "met by moving the loop" true (Engine.met r);
  (match r.Engine.moved with
  | [ moved ] ->
    let entry = Hypar_analysis.Kernel.entry r.Engine.analysis moved in
    Alcotest.(check int) "moved block ran 5000 times" 5000
      entry.Hypar_analysis.Kernel.exec_freq
  | l -> Alcotest.failf "expected a single move, got %d" (List.length l));
  Alcotest.(check bool) "total decreased" true
    (r.Engine.final.Engine.t_total < all_fine.Engine.t_total)

let test_eq2_consistency () =
  let prepared = Lazy.force prepared_hot in
  let r = Flow.partition (platform ()) ~timing_constraint:1 prepared in
  let check_times (x : Engine.times) =
    Alcotest.(check int) "Eq. 2" x.Engine.t_total
      (x.Engine.t_fpga + x.Engine.t_coarse + x.Engine.t_comm)
  in
  check_times r.Engine.initial;
  List.iter (fun (s : Engine.step) -> check_times s.Engine.times) r.Engine.steps

let test_infeasible () =
  let prepared = Lazy.force prepared_hot in
  let r = Flow.partition (platform ()) ~timing_constraint:1 prepared in
  Alcotest.(check bool) "cannot meet 1 cycle" false (Engine.met r);
  (match r.Engine.status with
  | Engine.Infeasible -> ()
  | Engine.Met_without_partitioning | Engine.Met_after _ ->
    Alcotest.fail "expected infeasible");
  (* every kernel was tried *)
  Alcotest.(check int) "all kernels moved"
    (List.length r.Engine.analysis.Hypar_analysis.Kernel.kernels)
    (List.length r.Engine.moved + List.length r.Engine.skipped)

let test_greedy_order_follows_weights () =
  let prepared = Lazy.force prepared_hot in
  let r = Flow.partition (platform ()) ~timing_constraint:1 prepared in
  let weights =
    List.map
      (fun (s : Engine.step) -> s.Engine.kernel.Hypar_analysis.Kernel.total_weight)
      r.Engine.steps
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "steps follow decreasing Eq.1 weight" true
    (decreasing weights)

let test_t_fpga_decreases_monotonically () =
  let prepared = Lazy.force prepared_hot in
  let r = Flow.partition (platform ()) ~timing_constraint:1 prepared in
  let rec check prev = function
    | (s : Engine.step) :: rest ->
      Alcotest.(check bool) "t_fpga never grows" true
        (s.Engine.times.Engine.t_fpga <= prev);
      check s.Engine.times.Engine.t_fpga rest
    | [] -> ()
  in
  check r.Engine.initial.Engine.t_fpga r.Engine.steps

let test_division_kernels_skipped () =
  let prepared =
    Flow.prepare ~name:"divloop"
      {|
int out[1];
int in[1];
void main() {
  int s = 0;
  int i;
  for (i = 1; i < 2000; i = i + 1) {
    s = s + in[0] / i;
  }
  out[0] = s;
}
|}
      ~inputs:[ ("in", [| 1000 |]) ]
  in
  let r = Flow.partition (platform ()) ~timing_constraint:1 prepared in
  Alcotest.(check bool) "the division loop was skipped" true
    (List.exists
       (fun (_, reason) -> reason = Engine.Not_cgc_executable)
       r.Engine.skipped);
  (* skipped blocks never appear in the moved set *)
  List.iter
    (fun (b, _) ->
      Alcotest.(check bool) "not moved" false (List.mem b r.Engine.moved))
    r.Engine.skipped

let test_max_moves () =
  let prepared = Lazy.force prepared_hot in
  let r = Engine.run ~max_moves:0 (platform ()) ~timing_constraint:1
      prepared.Flow.cdfg prepared.Flow.profile in
  Alcotest.(check int) "no moves allowed" 0 (List.length r.Engine.moved)

let test_comm_pricing_ablation () =
  let prepared = Lazy.force prepared_hot in
  let transition =
    Engine.run ~comm_pricing:`Transition (platform ()) ~timing_constraint:1
      prepared.Flow.cdfg prepared.Flow.profile
  in
  let per_inv =
    Engine.run ~comm_pricing:`Per_invocation (platform ()) ~timing_constraint:1
      prepared.Flow.cdfg prepared.Flow.profile
  in
  (* with the same moved set, per-invocation pricing is pessimistic *)
  Alcotest.(check bool) "per-invocation costs at least as much" true
    (per_inv.Engine.final.Engine.t_comm >= transition.Engine.final.Engine.t_comm)

let test_reduction_percent () =
  let prepared = Lazy.force prepared_hot in
  let r = Flow.partition (platform ()) ~timing_constraint:1 prepared in
  let expected =
    100.0
    *. float_of_int (r.Engine.initial.Engine.t_total - r.Engine.final.Engine.t_total)
    /. float_of_int r.Engine.initial.Engine.t_total
  in
  Alcotest.(check (float 0.001)) "reduction formula" expected
    (Engine.reduction_percent r)

let test_area_effect_on_initial () =
  (* the paper's §4 observation: larger A_FPGA, fewer initial cycles *)
  let prepared = (fun () -> Hypar_apps.Ofdm.prepared ()) () in
  let at area =
    (Flow.partition (platform ~area ()) ~timing_constraint:1 prepared)
      .Engine.initial.Engine.t_total
  in
  Alcotest.(check bool) "initial(1500) > initial(5000)" true (at 1500 > at 5000)

let suite =
  [
    Alcotest.test_case "early exit" `Quick test_early_exit;
    Alcotest.test_case "moves hot kernel" `Quick test_moves_hot_kernel;
    Alcotest.test_case "Eq. 2 consistency" `Quick test_eq2_consistency;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "greedy order" `Quick test_greedy_order_follows_weights;
    Alcotest.test_case "t_fpga monotone" `Quick test_t_fpga_decreases_monotonically;
    Alcotest.test_case "division kernels skipped" `Quick test_division_kernels_skipped;
    Alcotest.test_case "max moves" `Quick test_max_moves;
    Alcotest.test_case "comm pricing ablation" `Quick test_comm_pricing_ablation;
    Alcotest.test_case "reduction percent" `Quick test_reduction_percent;
    Alcotest.test_case "area effect on initial cycles" `Quick test_area_effect_on_initial;
  ]

let test_loop_granularity () =
  (* the ADPCM loop spans many blocks: loop granularity moves them as a
     unit and lands far below the per-block result *)
  let prepared = Hypar_apps.Adpcm.prepared () in
  let pl = platform () in
  let timing_constraint = Hypar_apps.Adpcm.timing_constraint in
  let block =
    Engine.run ~granularity:`Block pl ~timing_constraint prepared.Flow.cdfg
      prepared.Flow.profile
  in
  let loop =
    Engine.run ~granularity:`Loop pl ~timing_constraint prepared.Flow.cdfg
      prepared.Flow.profile
  in
  Alcotest.(check bool) "both met" true (Engine.met block && Engine.met loop);
  Alcotest.(check bool)
    (Printf.sprintf "loop granularity wins (%d < %d)"
       loop.Engine.final.Engine.t_total block.Engine.final.Engine.t_total)
    true
    (loop.Engine.final.Engine.t_total < block.Engine.final.Engine.t_total);
  Alcotest.(check bool) "fewer steps" true
    (List.length loop.Engine.steps <= List.length block.Engine.steps)

let test_loop_granularity_same_on_single_block_loops () =
  (* when every loop is a single block, the two granularities coincide *)
  let prepared = Lazy.force prepared_hot in
  let pl = platform () in
  let block =
    Engine.run ~granularity:`Block pl ~timing_constraint:1 prepared.Flow.cdfg
      prepared.Flow.profile
  in
  let loop =
    Engine.run ~granularity:`Loop pl ~timing_constraint:1 prepared.Flow.cdfg
      prepared.Flow.profile
  in
  Alcotest.(check (list int)) "same moved set"
    (List.sort compare block.Engine.moved)
    (List.sort compare loop.Engine.moved)

let granularity_suite =
  [
    Alcotest.test_case "loop granularity on ADPCM" `Quick test_loop_granularity;
    Alcotest.test_case "granularities coincide" `Quick test_loop_granularity_same_on_single_block_loops;
  ]

(* --- incremental recharacterisation: Inc vs the full recompute ---

   Engine.run now maintains its times by delta update (Engine.Inc); these
   tests replay full trajectories and require every published step to
   equal the from-scratch Engine.evaluate pricing of the same moved set —
   on the benchmark applications, on seeded random platforms, on degraded
   (faulted) platforms, and through Inc's own move/unmove/reset API. *)

let check_times_eq what (full : Engine.times) (inc : Engine.times) =
  if full <> inc then
    Alcotest.failf
      "%s: full (fpga=%d cgc=%d coarse=%d comm=%d total=%d) <> incremental \
       (fpga=%d cgc=%d coarse=%d comm=%d total=%d)"
      what full.Engine.t_fpga full.t_coarse_cgc full.t_coarse full.t_comm
      full.t_total inc.Engine.t_fpga inc.t_coarse_cgc inc.t_coarse inc.t_comm
      inc.t_total

let check_trajectory ?comm_pricing ?cgc_pipelining ?granularity what pl
    (prepared : Flow.prepared) ~timing_constraint =
  let r =
    Engine.run ?comm_pricing ?cgc_pipelining ?granularity pl ~timing_constraint
      prepared.Flow.cdfg prepared.Flow.profile
  in
  let full =
    Engine.evaluate ?comm_pricing ?cgc_pipelining pl prepared.Flow.cdfg
      prepared.Flow.profile
  in
  check_times_eq (what ^ ": initial") (full []) r.Engine.initial;
  List.iter
    (fun (s : Engine.step) ->
      check_times_eq
        (Printf.sprintf "%s: step %d" what s.Engine.step_index)
        (full s.Engine.on_cgc) s.Engine.times)
    r.Engine.steps;
  check_times_eq (what ^ ": final") (full r.Engine.moved) r.Engine.final;
  r

let test_incremental_apps () =
  List.iter
    (fun (name, prepared) ->
      ignore
        (check_trajectory name (platform ()) prepared ~timing_constraint:1))
    [
      ("ofdm", Hypar_apps.Ofdm.prepared ());
      ("jpeg", Hypar_apps.Jpeg.prepared ());
      ("sobel", Hypar_apps.Sobel.prepared ());
      ("adpcm", Hypar_apps.Adpcm.prepared ());
    ]

let test_incremental_loop_granularity () =
  (* loop granularity moves several blocks per step — the delta path must
     price multi-block steps exactly like the full recompute *)
  let prepared = Hypar_apps.Adpcm.prepared () in
  ignore
    (check_trajectory ~granularity:`Loop "adpcm loops" (platform ()) prepared
       ~timing_constraint:Hypar_apps.Adpcm.timing_constraint)

let lcg seed =
  let state = ref (if seed = 0 then 1 else seed) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

let test_incremental_random_platforms () =
  let prepared = Lazy.force prepared_hot in
  for seed = 1 to 12 do
    let next = lcg (seed * 7919) in
    let pl =
      Platform.make
        ~clock_ratio:(1 + next 4)
        ~fpga:(Fpga.make ~area:(200 + next 4000) ())
        ~cgc:
          (Cgc.make ~cgcs:(1 + next 4) ~rows:(1 + next 4) ~cols:(1 + next 4)
             ())
        ()
    in
    let comm_pricing = if next 2 = 0 then `Transition else `Per_invocation in
    let cgc_pipelining = next 2 = 1 in
    ignore
      (check_trajectory ~comm_pricing ~cgc_pipelining
         (Printf.sprintf "random platform %d" seed)
         pl prepared
         ~timing_constraint:(1 + next 100_000))
  done

let test_incremental_degraded () =
  let prepared = Hypar_apps.Ofdm.prepared () in
  let spec =
    {
      Hypar_resilience.Fault.seed = 42;
      faults =
        [
          Hypar_resilience.Fault.Dead_cgc 0;
          Hypar_resilience.Fault.Area_loss (`Percent 30);
          Hypar_resilience.Fault.Comm_slowdown 150;
          Hypar_resilience.Fault.Dead_node
            { cgc = 1; row = 0; col = 1; unit_kind = Hypar_resilience.Fault.Mult };
        ];
    }
  in
  match Hypar_resilience.Degrade.apply ~strict:false spec (platform ()) with
  | Error e -> Alcotest.fail e
  | Ok pl ->
    ignore (check_trajectory "degraded" pl prepared ~timing_constraint:1)

let test_inc_move_unmove_reset () =
  let prepared = Lazy.force prepared_hot in
  let pl = platform () in
  let inc = Engine.Inc.create pl prepared.Flow.cdfg prepared.Flow.profile in
  let full = Engine.evaluate pl prepared.Flow.cdfg prepared.Flow.profile in
  let initial = Engine.Inc.times inc in
  check_times_eq "all-FPGA" (full []) initial;
  (* replay the engine's own trajectory move by move, then unwind it *)
  let r =
    Engine.run pl ~timing_constraint:1 prepared.Flow.cdfg prepared.Flow.profile
  in
  Alcotest.(check bool) "trajectory is non-trivial" true (r.Engine.moved <> []);
  List.iteri
    (fun i b ->
      Engine.Inc.move inc b;
      check_times_eq
        (Printf.sprintf "after move %d" (i + 1))
        (full (Engine.Inc.moved inc))
        (Engine.Inc.times inc))
    r.Engine.moved;
  Alcotest.(check (list int)) "moved order" r.Engine.moved
    (Engine.Inc.moved inc);
  List.iter
    (fun b ->
      Engine.Inc.unmove inc b;
      check_times_eq "during unwind"
        (full (Engine.Inc.moved inc))
        (Engine.Inc.times inc))
    (List.rev r.Engine.moved);
  check_times_eq "unwound to initial" initial (Engine.Inc.times inc);
  (* re-move everything, then reset jumps straight back *)
  List.iter (fun b -> Engine.Inc.move inc b) r.Engine.moved;
  Engine.Inc.reset inc;
  check_times_eq "reset" initial (Engine.Inc.times inc);
  match r.Engine.moved with
  | [] -> ()
  | b :: _ -> (
    Engine.Inc.move inc b;
    (match Engine.Inc.move inc b with
    | () -> Alcotest.fail "double move should raise"
    | exception Invalid_argument _ -> ());
    Engine.Inc.unmove inc b;
    match Engine.Inc.unmove inc b with
    | () -> Alcotest.fail "unmove of an unmoved block should raise"
    | exception Invalid_argument _ -> ())

let incremental_suite =
  [
    Alcotest.test_case "incremental matches full on apps" `Quick
      test_incremental_apps;
    Alcotest.test_case "incremental at loop granularity" `Quick
      test_incremental_loop_granularity;
    Alcotest.test_case "incremental on random platforms" `Quick
      test_incremental_random_platforms;
    Alcotest.test_case "incremental on degraded platforms" `Quick
      test_incremental_degraded;
    Alcotest.test_case "Inc move/unmove/reset" `Quick
      test_inc_move_unmove_reset;
  ]

let suite = suite @ granularity_suite @ incremental_suite
