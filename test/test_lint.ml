(* Unit tests for the Mini-C source linter. *)

module Lint = Hypar_analysis.Lint

let parse = Hypar_minic.Parser.parse_program

let ast_codes src =
  List.map (fun (d : Lint.diagnostic) -> Lint.code_id d.code)
    (Lint.check_ast (parse src))

let full src =
  match Lint.check src with
  | Ok ds -> ds
  | Error msg -> Alcotest.failf "lint refused to parse: %s" msg

let full_codes src =
  List.map (fun (d : Lint.diagnostic) -> Lint.code_id d.code) (full src)

let has code codes = List.mem code codes

let check_fires code msg src =
  Alcotest.(check bool) (msg ^ ": " ^ code ^ " fires") true
    (has code (full_codes src))

let check_silent code msg src =
  Alcotest.(check bool) (msg ^ ": " ^ code ^ " silent") false
    (has code (full_codes src))

(* --- W001 unused-variable ------------------------------------------------- *)

let test_unused_variable () =
  check_fires "W001" "never-read local" {|
int out[1];
void main() {
  int dead = 3;
  out[0] = 1;
}
|};
  check_silent "W001" "read local" {|
int out[1];
void main() {
  int live = 3;
  out[0] = live;
}
|}

(* --- W002 unused-parameter ------------------------------------------------ *)

let test_unused_parameter () =
  check_fires "W002" "ignored scalar param" {|
int out[1];
int f(int a, int b) {
  return a + 1;
}
void main() {
  out[0] = f(1, 2);
}
|};
  check_silent "W002" "both params read" {|
int out[1];
int f(int a, int b) {
  return a + b;
}
void main() {
  out[0] = f(1, 2);
}
|}

(* --- W003 dead-assignment ------------------------------------------------- *)

let test_dead_assignment () =
  check_fires "W003" "overwritten before read" {|
int out[1];
void main() {
  int x;
  x = 5;
  x = 6;
  out[0] = x;
}
|};
  check_silent "W003" "read between writes" {|
int out[1];
void main() {
  int x;
  x = 5;
  out[0] = x;
  x = 6;
  out[0] = x;
}
|}

let test_dead_assignment_at_function_end () =
  check_fires "W003" "value dies with the function" {|
int out[1];
void main() {
  int x;
  out[0] = 1;
  x = 9;
}
|}

let test_dead_assignment_branch_conservative () =
  (* the branch may or may not read x: stay silent *)
  check_silent "W003" "possibly-read across a branch" {|
int out[1];
int in[1];
void main() {
  int x;
  x = 5;
  if (in[0]) {
    out[0] = x;
  }
  x = 6;
  out[0] = x;
}
|}

(* --- W004 unreachable-code ------------------------------------------------ *)

let test_unreachable_after_return () =
  (* never typechecks (trailing-return rule) but must still lint *)
  Alcotest.(check bool) "code after return" true
    (has "W004"
       (ast_codes {|
int f() {
  return 1;
  int x = 2;
}
|}))

let test_unreachable_const_false_branch () =
  check_fires "W004" "if(0) body" {|
int out[1];
void main() {
  if (0) {
    out[0] = 1;
  }
  out[0] = 2;
}
|};
  check_silent "W004" "live branch" {|
int out[1];
int in[1];
void main() {
  if (in[0]) {
    out[0] = 1;
  }
  out[0] = 2;
}
|}

let test_unreachable_after_infinite_loop () =
  (* Mini-C has no break: while(1) never exits *)
  Alcotest.(check bool) "code after while(1)" true
    (has "W004"
       (ast_codes {|
void f() {
  while (1) {
    int x = 1;
  }
  int y = 2;
}
|}))

(* --- W005 constant-condition ---------------------------------------------- *)

let test_constant_condition () =
  check_fires "W005" "folded comparison" {|
int out[1];
void main() {
  if (2 > 1) {
    out[0] = 1;
  }
}
|};
  check_silent "W005" "data-dependent condition" {|
int out[1];
int in[1];
void main() {
  if (in[0] > 1) {
    out[0] = 1;
  }
}
|}

let test_constant_ternary_condition () =
  check_fires "W005" "constant ternary" {|
int out[1];
void main() {
  out[0] = 1 ? 2 : 3;
}
|}

(* --- W006 possible-div-by-zero -------------------------------------------- *)

let test_div_by_zero () =
  check_fires "W006" "divisor range includes 0" {|
int out[1];
int in[1];
void main() {
  int d = in[0] & 7;
  out[0] = in[0] / d;
}
|};
  check_silent "W006" "divisor provably nonzero" {|
int out[1];
int in[1];
void main() {
  int d = (in[0] & 7) + 1;
  out[0] = in[0] / d;
}
|}

(* --- W007 shift-out-of-range ---------------------------------------------- *)

let test_shift_out_of_range () =
  check_fires "W007" "shift by 40" {|
int out[1];
int in[1];
void main() {
  out[0] = in[0] << 40;
}
|};
  check_silent "W007" "shift by 3" {|
int out[1];
int in[1];
void main() {
  out[0] = in[0] << 3;
}
|}

(* --- W008 width-overflow -------------------------------------------------- *)

let test_width_overflow () =
  check_fires "W008" "int16 MAC accumulator" {|
int out[1];
int x[8];
void main() {
  int16 s = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    s = s + x[i] * x[i];
  }
  out[0] = s;
}
|};
  check_silent "W008" "small constants fit" {|
int out[1];
void main() {
  int a = 5;
  out[0] = a + 2;
}
|}

(* --- W009 induction-write ------------------------------------------------- *)

let test_induction_write () =
  check_fires "W009" "body writes the counter" {|
int out[8];
void main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    out[i] = i;
    i = i + 1;
  }
}
|};
  check_silent "W009" "body leaves the counter alone" {|
int out[8];
void main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    out[i] = i;
  }
}
|}

(* --- diagnostics carry positions, rendering, code names -------------------- *)

let test_positions () =
  match
    full {|
int out[1];
void main() {
  int dead;
  out[0] = 1;
}
|}
  with
  | [ d ] ->
    Alcotest.(check string) "code" "W001" (Lint.code_id d.code);
    Alcotest.(check int) "line" 4 d.line;
    Alcotest.(check bool) "column set" true (d.col > 0)
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_render () =
  let ds = full {|
int out[1];
void main() {
  int dead;
  out[0] = 1;
}
|} in
  let text = Lint.render ~file:"t.mc" ds in
  Alcotest.(check bool) "text format" true
    (contains "t.mc:4:" text && contains "warning W001 [unused-variable]" text);
  let json = Lint.render_json ~file:"t.mc" ds in
  Alcotest.(check bool) "json format" true
    (contains {|"count": 1|} json && contains {|"code": "W001"|} json)

let test_code_names () =
  Alcotest.(check int) "nine codes" 9 (List.length Lint.all_codes);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("id resolves: " ^ Lint.code_id c)
        true
        (Lint.code_of_string (Lint.code_id c) = Some c);
      Alcotest.(check bool)
        ("mnemonic resolves: " ^ Lint.code_mnemonic c)
        true
        (Lint.code_of_string (Lint.code_mnemonic c) = Some c))
    Lint.all_codes;
  Alcotest.(check bool) "case-insensitive" true
    (Lint.code_of_string "w003" = Some Lint.Dead_assignment);
  Alcotest.(check bool) "unknown rejected" true
    (Lint.code_of_string "W999" = None)

let test_parse_error_is_error () =
  match Lint.check "int main( {" with
  | Error msg -> Alcotest.(check bool) "position in message" true (contains ":" msg)
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_clean_program_is_clean () =
  Alcotest.(check (list string)) "no diagnostics" []
    (full_codes {|
int out[4];
int in[4];
void main() {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    out[i] = in[i] * 2;
  }
}
|})

let suite =
  [
    Alcotest.test_case "W001 unused variable" `Quick test_unused_variable;
    Alcotest.test_case "W002 unused parameter" `Quick test_unused_parameter;
    Alcotest.test_case "W003 dead assignment" `Quick test_dead_assignment;
    Alcotest.test_case "W003 at function end" `Quick test_dead_assignment_at_function_end;
    Alcotest.test_case "W003 branch conservative" `Quick test_dead_assignment_branch_conservative;
    Alcotest.test_case "W004 after return" `Quick test_unreachable_after_return;
    Alcotest.test_case "W004 const-false branch" `Quick test_unreachable_const_false_branch;
    Alcotest.test_case "W004 after infinite loop" `Quick test_unreachable_after_infinite_loop;
    Alcotest.test_case "W005 constant condition" `Quick test_constant_condition;
    Alcotest.test_case "W005 constant ternary" `Quick test_constant_ternary_condition;
    Alcotest.test_case "W006 div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "W007 shift range" `Quick test_shift_out_of_range;
    Alcotest.test_case "W008 width overflow" `Quick test_width_overflow;
    Alcotest.test_case "W009 induction write" `Quick test_induction_write;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "render text and json" `Quick test_render;
    Alcotest.test_case "code names" `Quick test_code_names;
    Alcotest.test_case "parse errors" `Quick test_parse_error_is_error;
    Alcotest.test_case "clean program" `Quick test_clean_program_is_clean;
  ]
