The hypar CLI end to end on a small FIR kernel.

Kernel analysis (Table-1 style):

  $ hypar kernels fir.mc --top 3
  fir.mc
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                2 |         448 |                 8 |         3584
                3 |          56 |                 4 |          224
                1 |          56 |                 2 |          112

Partitioning against a tight constraint moves the inner loop:

  $ hypar partition fir.mc -t 8000
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057  [met]
    met after 1 movement(s)
    reduction: 74.6%

An infeasible constraint exits non-zero:

  $ hypar partition fir.mc -t 1
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 1):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057
    step 2: move BB3 -> t_fpga=1425 t_coarse=504 (=1512 CGC cycles) t_comm=616 t_total=2545
    step 3: move BB1 -> t_fpga=25 t_coarse=523 (=1568 CGC cycles) t_comm=10 t_total=558
    INFEASIBLE
    reduction: 96.5%
  [1]

The CFG export is valid DOT:

  $ hypar dot fir.mc | head -3
  digraph cfg {
    node [shape=box fontname="monospace"];
    n0 [label="BB0 entry\n1 instrs"];

The IR dump round-trips through any subcommand:

  $ hypar dump fir.mc > fir.ir
  $ hypar kernels fir.ir --top 1
  fir.ir
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                2 |         448 |                 8 |         3584

Value-range analysis flags the genuine width hazards (the int16 MAC
accumulator) and proves the loop counters:

  $ hypar ranges fir.mc
  s__2#2 width=16 inferred=[-35184372088832, 35184372088832] declared=[-32768, 32767] OVERFLOW RISK
  t#10 width=16 inferred=[-549755813888, 549755813888] declared=[-32768, 32767] OVERFLOW RISK

Baselines compare the paper's greedy against alternatives:

  $ hypar baselines fir.mc -t 8000
  strategy                       moves            final    met    evals
  paper greedy (Eq.1 weight)         1             4057   true        2
  benefit greedy                     1             4057   true        5
  loop greedy (whole loops)          1             4057   true        2
  random order (seed 1)              1             4057   true        2
  exhaustive (top 12)                1             4057   true        8

The design-space sweep covers an A_FPGA x CGC grid:

  $ hypar sweep fir.mc -t 8000 | head -4
    A_FPGA       CGCs          initial            final  reduction   moved
       500    one 2x2            26737             4057      84.8%       1
       500    two 2x2            26737             4057      84.8%       1
       500  three 2x2            26737             4057      84.8%       1

explore generalises the sweep to arbitrary axis grids with cached,
Pareto-analysed evaluation.  A zero-area point fails the device model's
validation but is recorded instead of aborting — the run still exits 0,
with a warning count on stderr (exit 1 is reserved for all points
failing).  The duplicated 1500 in the area axis is served by the memo
cache:

  $ hypar explore fir.mc -t 8000 --area 0,500,1500,1500 --cgcs 1,2 --format csv
  area,cgcs,rows,cols,clock_ratio,timing,status,met,initial,final,t_fpga,t_coarse,t_comm,cycles_in_cgc,moved,reduction,energy,cache,pareto,error
  0,1,2,2,3,8000,failed,,,,,,,,,,,miss,false,Invalid_argument: Fpga.make: area must be positive [point a0/k1/g2x2/r3/t8000]
  0,2,2,2,3,8000,failed,,,,,,,,,,,miss,false,Invalid_argument: Fpga.make: area must be positive [point a0/k2/g2x2/r3/t8000]
  500,1,2,2,3,8000,met-after-1,true,26737,4057,2993,448,616,1344,2,84.8,94135,miss,true,
  500,2,2,2,3,8000,met-after-1,true,26737,4057,2993,448,616,1344,2,84.8,94135,miss,true,
  1500,1,2,2,3,8000,met-after-1,true,15985,4057,2993,448,616,1344,2,74.6,94135,miss,false,
  1500,2,2,2,3,8000,met-after-1,true,15985,4057,2993,448,616,1344,2,74.6,94135,miss,false,
  1500,1,2,2,3,8000,met-after-1,true,15985,4057,2993,448,616,1344,2,74.6,94135,hit,false,
  1500,2,2,2,3,8000,met-after-1,true,15985,4057,2993,448,616,1344,2,74.6,94135,hit,false,
  hypar: 2 of 8 points failed
  $ echo $?
  0

JSON output carries per-point status, the cache counters and the Pareto
frontier (the digest line is elided — it tracks the IR, not this test):

  $ hypar explore fir.mc -t 8000 --area 0,1500 --format json | grep -v '"digest"'
  hypar: 3 of 6 points failed
  {
    "workload": "fir.mc",
    "points": 6,
    "ok": 3,
    "met": 3,
    "failed": 3,
    "cache": {"hits": 0, "misses": 6},
    "results": [
      {"area": 0, "cgcs": 1, "rows": 2, "cols": 2, "clock_ratio": 3, "timing": 8000, "status": "failed", "cache": "miss", "error": "Invalid_argument: Fpga.make: area must be positive [point a0/k1/g2x2/r3/t8000]"},
      {"area": 0, "cgcs": 2, "rows": 2, "cols": 2, "clock_ratio": 3, "timing": 8000, "status": "failed", "cache": "miss", "error": "Invalid_argument: Fpga.make: area must be positive [point a0/k2/g2x2/r3/t8000]"},
      {"area": 0, "cgcs": 3, "rows": 2, "cols": 2, "clock_ratio": 3, "timing": 8000, "status": "failed", "cache": "miss", "error": "Invalid_argument: Fpga.make: area must be positive [point a0/k3/g2x2/r3/t8000]"},
      {"area": 1500, "cgcs": 1, "rows": 2, "cols": 2, "clock_ratio": 3, "timing": 8000, "status": "ok", "engine": "met-after-1", "met": true, "initial": 15985, "final": 4057, "t_fpga": 2993, "t_coarse": 448, "t_comm": 616, "cycles_in_cgc": 1344, "moved": [2], "reduction": 74.6, "energy": 94135, "cache": "miss", "pareto": true},
      {"area": 1500, "cgcs": 2, "rows": 2, "cols": 2, "clock_ratio": 3, "timing": 8000, "status": "ok", "engine": "met-after-1", "met": true, "initial": 15985, "final": 4057, "t_fpga": 2993, "t_coarse": 448, "t_comm": 616, "cycles_in_cgc": 1344, "moved": [2], "reduction": 74.6, "energy": 94135, "cache": "miss", "pareto": true},
      {"area": 1500, "cgcs": 3, "rows": 2, "cols": 2, "clock_ratio": 3, "timing": 8000, "status": "ok", "engine": "met-after-1", "met": true, "initial": 15985, "final": 4057, "t_fpga": 2993, "t_coarse": 448, "t_comm": 616, "cycles_in_cgc": 1344, "moved": [2], "reduction": 74.6, "energy": 94135, "cache": "miss", "pareto": true}
    ],
    "pareto": [3, 4, 5],
    "best": {"t_total": 3, "area": 3, "energy": 3}
  }

--pareto-only restricts the listing to the frontier (the 1500-area point
is dominated: same t_total and energy, more area):

  $ hypar explore fir.mc -t 8000 --area 500,1500 --cgcs 1 --pareto-only
  explore fir.mc — 2 points
    A_FPGA       CGCs  ratio    timing                   status      initial        final reduction       energy  moved  cache  pareto
       500    one 2x2      3      8000              met-after-1        26737         4057     84.8%        94135      1   miss       *
  summary: 2/2 ok (2 met constraint), 0 failed; cache: 2 misses, 0 hits
  pareto frontier (A_FPGA, t_total, energy): 1 point
  best t_total: a500/k1/g2x2/r3/t8000 -> t_total=4057 energy=94135
  best A_FPGA : a500/k1/g2x2/r3/t8000 -> t_total=4057 energy=94135
  best energy : a500/k1/g2x2/r3/t8000 -> t_total=4057 energy=94135

An oversized space is refused before any evaluation:

  $ hypar explore fir.mc -t 8000 --area 1..100 --cgcs 1..100 --max-points 50
  hypar: design space has 10000 points, above the bound of 50 (raise --max-points)
  [2]

A malformed axis is a usage error:

  $ hypar explore fir.mc -t 8000 --area 5..1
  hypar: option '--area': range "5..1": end is below start
  Usage: hypar explore [OPTION]… FILE
  Try 'hypar explore --help' or 'hypar --help' for more information.
  [124]

The linter warns about the FIR kernel's int16 MAC accumulator but exits
zero — warnings alone never fail:

  $ hypar lint fir.mc
  fir.mc:7:9: warning W008 [width-overflow]: "s" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  fir.mc:8:9: warning W008 [width-overflow]: "t" (width 16) may overflow: inferred range [-549755813888, 549755813888] exceeds [-32768, 32767]
  2 warnings

Denying everything except the width widening makes it a clean CI gate:

  $ hypar lint fir.mc --deny W001 --deny W002 --deny W003 --deny W004 \
  >   --deny W005 --deny W006 --deny W007 --deny W009 > /dev/null
  $ echo $?
  0

A deliberately messy kernel trips every diagnostic family, and --deny
turns that into a failing exit code:

  $ hypar lint dirty.mc --deny all
  dirty.mc:2:5: warning W002 [unused-parameter]: parameter "w" of "scale" is never read
  dirty.mc:4:9: warning W001 [unused-variable]: variable "unused" is never read
  dirty.mc:5:9: warning W008 [width-overflow]: "x" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:6:5: warning W003 [dead-assignment]: value assigned to "x" is never read
  dirty.mc:8:9: warning W005 [constant-condition]: condition is always false
  dirty.mc:9:9: warning W004 [unreachable-code]: statement is unreachable (condition is always false)
  dirty.mc:11:15: warning W007 [shift-out-of-range]: shift amount of '<<' may be outside 0..31 (range [40, 40])
  dirty.mc:12:9: warning W008 [width-overflow]: "q" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:12:13: warning W006 [possible-div-by-zero]: right operand of '/' is always zero
  dirty.mc:17:9: warning W008 [width-overflow]: "acc" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:18:9: warning W008 [width-overflow]: "i" (width 16) may overflow: inferred range [0, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:21:9: warning W009 [induction-write]: loop induction variable "i" is written inside the loop body
  12 warnings
  hypar: denied lint codes present: W001, W002, W003, W004, W005, W006, W007, W008, W009
  [1]

So does a warning budget:

  $ hypar lint dirty.mc --max-warnings 3 > /dev/null
  hypar: 12 warnings exceed --max-warnings 3
  [1]

Machine-readable output for editor/CI integration:

  $ hypar lint dirty.mc --format=json | head -5
  {
    "file": "dirty.mc",
    "count": 12,
    "diagnostics": [
      {"code": "W002", "name": "unused-parameter", "line": 2, "col": 5, "message": "parameter \"w\" of \"scale\" is never read"},

--verify-ir re-checks the IR invariants around every pass; a clean
compile is unaffected:

  $ hypar partition fir.mc -t 8000 --verify-ir | head -2
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985

A hand-corrupted IR file (it reads a register nothing defines) is
rejected before partitioning starts:

  $ hypar partition broken.ir -t 100 --verify-ir
  hypar: IR verification failed after "broken.ir":
  defs-before-uses(entry): registers read before any definition: ghost#7
  [3]

The IR diagnostics engine (dataflow-backed A001-A008) inspects the CDFG
as lowered, before optimisation.  On the FIR kernel it notes the
rotated-loop pre-tests the optimiser will fold and the lowering's
duplicated counter inits — and proves every array index in bounds:

  $ hypar analyze fir.mc
  fir.mc:BB0.term: note A004 [constant-branch]: branch condition is always true; only L0_for_body is ever taken
  fir.mc:BB0.0: note A002 [dead-store]: value of i__1#0 is never read
  fir.mc:BB1.term: note A004 [constant-branch]: branch condition is always true; only L2_for_body is ever taken
  fir.mc:BB1.1: note A002 [dead-store]: value of t__3#3 is never read
  4 findings

After the optimisation pipeline the same program is clean:

  $ hypar analyze fir.mc -O

The corrupted IR the verifier rejects is still analysable — the ghost
read surfaces as A001, and --deny makes it a CI gate:

  $ hypar analyze broken.ir --deny use-before-def
  broken.ir:BB0.0: note A001 [use-before-def]: ghost#7 may be read before any definition reaches it
  1 finding
  hypar: denied analyze codes present: A001
  [1]

An unknown code fails fast:

  $ hypar analyze fir.mc --deny A999
  hypar: unknown analyze code "A999" (use A001..A008 or a mnemonic)
  [2]

The messy kernel trips the other families (the interval analysis proves
the division by the constant-zero denominator):

  $ hypar analyze dirty.mc --max-findings 3
  dirty.mc:BB0.term: note A004 [constant-branch]: branch condition is always true; only L0_for_body is ever taken
  dirty.mc:BB0.1: note A002 [dead-store]: value of i__2#1 is never read
  dirty.mc:BB1.term: note A004 [constant-branch]: branch condition is always false; only L3_join is ever taken
  dirty.mc:BB1.1: note A002 [dead-store]: value of scale_w__4#4 is never read
  dirty.mc:BB1.1: note A008 [write-only-variable]: scale_w__4#4 is written but never read
  dirty.mc:BB1.3: note A002 [dead-store]: value of unused__6#6 is never read
  dirty.mc:BB1.3: note A008 [write-only-variable]: unused__6#6 is written but never read
  dirty.mc:BB1.4: note A002 [dead-store]: value of x__7#7 is never read
  dirty.mc:BB1.5: note A002 [dead-store]: value of x__7#7 is never read
  dirty.mc:BB3.1: note A006 [possible-div-by-zero]: divisor may be zero: inferred [0, 0]
  10 findings
  hypar: 10 findings exceed --max-findings 3
  [1]

Machine-readable findings for editor/CI integration:

  $ hypar analyze dirty.mc --format json | head -6
  {
    "file": "dirty.mc",
    "count": 10,
    "findings": [
      {"code": "A004", "name": "constant-branch", "block": 0, "index": -1, "message": "branch condition is always true; only L0_for_body is ever taken"},
      {"code": "A002", "name": "dead-store", "block": 0, "index": 1, "message": "value of i__2#1 is never read"},

The opt subcommand reports what the pipeline removed:

  $ hypar opt fir.mc
  fir.mc: 5 blocks / 18 instrs -> 5 blocks / 14 instrs (-4)

Observability: --stats prints a per-stage breakdown on stderr.  Span and
counter names and counts are deterministic; only the microsecond columns
vary, so they are scrubbed:

  $ hypar partition fir.mc -t 8000 --stats > /dev/null 2> stats.txt
  $ sed -E 's/[0-9]+\.[0-9]+/T/g' stats.txt | tr -s ' '
  == hypar stats ==
  span count total_us self_us
  minic.parse 1 T T
  minic.typecheck 1 T T
  minic.inline 1 T T
  minic.lower 1 T T
  ir.pass.input 1 T T
  ir.pass.const_fold 4 T T
  ir.pass.algebraic_simplify 4 T T
  ir.pass.copy_propagate 4 T T
  ir.pass.common_subexpressions 4 T T
  dataflow.liveness 7 T T
  ir.pass.dead_code_eliminate 4 T T
  ir.pass.simplify_cfg 3 T T
  dataflow.consts 2 T T
  ir.pass.global_const_propagate 2 T T
  dataflow.copies 2 T T
  ir.pass.global_copy_propagate 2 T T
  dataflow.avail 2 T T
  ir.pass.global_cse 2 T T
  ir.pass.loop_invariant_motion 1 T T
  minic.optimize 1 T T
  minic.compile 1 T T
  profile.run 1 T T
  fine.temporal 5 T T
  fine.map_block 5 T T
  cgc.schedule 5 T T
  cgc.bind 5 T T
  engine.characterise 1 T T
  engine.move 1 T T
  engine.run 1 T T
  cli.partition 1 T T
  counter total
  dataflow.liveness.iterations 49
  ir.shrink.dead_code_eliminate.instrs 4
  dataflow.consts.iterations 18
  dataflow.copies.iterations 18
  dataflow.avail.iterations 10
  profile.instrs_executed 3473
  profile.blocks_executed 562
  fine.temporal_partitions 4
  engine.evaluations 2
  engine.moves 1
  gauge last
  ir.blocks 5
  ir.instrs 14
  cgc.schedule_length 0

--trace writes a Chrome trace_event JSON; the trace subcommand validates
the file (balanced spans, every end matching the most recent open begin)
and summarises per-name span counts:

  $ hypar partition fir.mc -t 8000 --trace run.json > /dev/null
  $ hypar trace run.json
  run.json: 241 events, 75 spans, balanced, max depth 5
    cgc.bind                         5
    cgc.schedule                     5
    cli.partition                    1
    dataflow.avail                   2
    dataflow.consts                  2
    dataflow.copies                  2
    dataflow.liveness                7
    engine.characterise              1
    engine.move                      1
    engine.run                       1
    fine.map_block                   5
    fine.temporal                    5
    ir.pass.algebraic_simplify       4
    ir.pass.common_subexpressions    4
    ir.pass.const_fold               4
    ir.pass.copy_propagate           4
    ir.pass.dead_code_eliminate      4
    ir.pass.global_const_propagate   2
    ir.pass.global_copy_propagate    2
    ir.pass.global_cse               2
    ir.pass.input                    1
    ir.pass.loop_invariant_motion    1
    ir.pass.simplify_cfg             3
    minic.compile                    1
    minic.inline                     1
    minic.lower                      1
    minic.optimize                   1
    minic.parse                      1
    minic.typecheck                  1
    profile.run                      1

The JSON schema after scrubbing timestamps:

  $ sed -E 's/"ts":[0-9]+(\.[0-9]+)?/"ts":T/g' run.json | head -6
  {"traceEvents":[
  {"name":"cli.partition","cat":"cli","ph":"B","pid":0,"tid":0,"ts":T},
  {"name":"minic.compile","cat":"minic","ph":"B","pid":0,"tid":0,"ts":T},
  {"name":"minic.parse","cat":"minic","ph":"B","pid":0,"tid":0,"ts":T},
  {"name":"minic.parse","ph":"E","pid":0,"tid":0,"ts":T},
  {"name":"minic.typecheck","cat":"minic","ph":"B","pid":0,"tid":0,"ts":T},

Without --trace/--stats the commands print exactly what they always did
(the sink stays disabled), and a garbage trace file is rejected:

  $ echo 'not a trace' > bad.json
  $ hypar trace bad.json
  hypar: bad.json: not valid JSON: expected null at offset 0
  [2]

HYPAR_TRACE in the environment is an equivalent default for --trace:

  $ HYPAR_TRACE=env.json hypar kernels fir.mc --top 1 > /dev/null
  $ hypar trace env.json | head -1
  env.json: 179 events, 51 spans, balanced, max depth 5

Parallel exploration merges worker traces deterministically: after
scrubbing timestamps, --jobs 2 produces a byte-identical trace to
--jobs 1:

  $ hypar explore fir.mc -t 8000 --area 500,1500 --cgcs 1,2 --jobs 1 --trace j1.json > /dev/null
  $ hypar explore fir.mc -t 8000 --area 500,1500 --cgcs 1,2 --jobs 2 --trace j2.json > /dev/null
  $ sed -E 's/"ts":[0-9]+(\.[0-9]+)?/"ts":T/g' j1.json > j1.scrubbed
  $ sed -E 's/"ts":[0-9]+(\.[0-9]+)?/"ts":T/g' j2.json > j2.scrubbed
  $ cmp j1.scrubbed j2.scrubbed && echo 'identical modulo timestamps'
  identical modulo timestamps

Resilience: a fault spec is parsed, echoed canonically and applied to
the platform.  Killing node (1,1) of CGC 0 truncates its column to depth
1 and losing CGC 1 zeroes both of its columns:

  $ hypar faults faults.spec
  seed 7
  dead-node 0 1 1 both
  dead-cgc 1
  platform A_FPGA=1500, two 2x2 CGCs [degraded]: fpga{area=1500 reconfig=24}, cgc{2 x 2x2, mem_ports=2, regs=64}, T_FPGA=3*T_CGC
  health{cols=[2;1;0;0]}

  $ hypar faults faults.spec --format json
  {"seed": 7, "faults": [{"kind": "dead-node", "cgc": 0, "row": 1, "col": 1, "unit": "both"}, {"kind": "dead-cgc", "cgc": 1}]}
  platform A_FPGA=1500, two 2x2 CGCs [degraded]: fpga{area=1500 reconfig=24}, cgc{2 x 2x2, mem_ports=2, regs=64}, T_FPGA=3*T_CGC
  health{cols=[2;1;0;0]}

A malformed spec is rejected with the grammar:

  $ echo 'dead-node 0' | hypar faults /dev/stdin 2>&1 | head -2
  hypar: /dev/stdin: line 1: dead-node needs CGC ROW COL [mult|alu|both]
  fault spec syntax (one directive per line, '#' starts a comment):

Partitioning on the degraded platform still completes; the inner loop
needs more CGC cycles (fewer live nodes per schedule step) and the delta
report quantifies the cost against the healthy run:

  $ hypar partition fir.mc -t 8000 --faults faults.spec
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs [degraded] (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=598 (=1792 CGC cycles) t_comm=616 t_total=4207  [met]
    met after 1 movement(s)
    reduction: 73.7%
  degradation delta for fir.mc:
    healthy : t_total=4057 (met after 1 movement(s))
    degraded: t_total=4207 (met after 1 movement(s))
    delta   : +150 cycles (+3.7%)
    fallback: none
  

Exploration sweeps the degraded platform when --faults is given:

  $ hypar explore fir.mc -t 8000 --area 1500 --cgcs 2 --faults faults.spec --format csv
  area,cgcs,rows,cols,clock_ratio,timing,status,met,initial,final,t_fpga,t_coarse,t_comm,cycles_in_cgc,moved,reduction,energy,cache,pareto,error
  1500,2,2,2,3,8000,met-after-1,true,15985,4207,2993,598,616,1792,2,73.7,94135,miss,true,

Frontend errors are located, printed without a backtrace, and exit 2:

  $ hypar partition bad.mc -t 8000
  bad.mc:1:19: expected expression, found ';'
  [2]

--checkpoint journals every completed point; after a simulated crash
(the journal loses its tail and the last line is torn mid-entry),
--resume restores the surviving points and re-evaluates only the rest,
producing byte-identical output to the uninterrupted run:

  $ hypar explore fir.mc -t 8000 --area 500,1500 --cgcs 1,2 --checkpoint ck.journal --format csv > fresh.csv
  $ head -3 ck.journal > torn.journal
  $ head -4 ck.journal | tail -1 | cut -c1-20 >> torn.journal
  $ mv torn.journal ck.journal
  $ hypar explore fir.mc -t 8000 --area 500,1500 --cgcs 1,2 --checkpoint ck.journal --resume --format csv > resumed.csv
  $ cmp fresh.csv resumed.csv && echo 'identical'
  identical

--resume without --checkpoint is a usage error:

  $ hypar explore fir.mc -t 8000 --area 500 --cgcs 1 --resume
  hypar: --resume requires --checkpoint FILE
  [2]

serve is the long-running counterpart: newline-delimited JSON requests
on stdin, one envelope per line on stdout.  A malformed line, a missing
file or an exhausted fuel budget is a typed envelope for that request
only — the stream keeps serving, and EOF drains cleanly with a stats
line on stderr (health's uptime is the only nondeterministic byte, so it
is scrubbed):

  $ cat > req.jsonl <<'EOF'
  > {"id":1,"verb":"analyze","file":"fir.mc","top":1}
  > this line is not JSON
  > {"id":2,"verb":"partition","file":"fir.mc","timing":8000}
  > {"id":3,"verb":"partition","file":"fir.mc","timing":8000,"fuel":50}
  > {"id":4,"verb":"partition","file":"nope.mc","timing":8000}
  > {"id":5,"verb":"health"}
  > EOF
  $ hypar serve < req.jsonl > out.jsonl 2> serve-stats.txt
  $ sed -E 's/"uptime_ms":[0-9]+/"uptime_ms":T/' out.jsonl
  {"id":1,"status":"ok","verb":"analyze","payload":{"file":"fir.mc","kernels":[{"block_id":2,"label":"L2_for_body","exec_freq":448,"bb_weight":8,"total_weight":3584,"loop_depth":2}]}}
  {"id":null,"status":"error","kind":"parse-error","message":"invalid JSON: expected true at offset 0"}
  {"id":2,"status":"ok","verb":"partition","payload":{"file":"fir.mc","status":"met-after-1","met":true,"timing_constraint":8000,"initial":{"t_fpga":15985,"t_coarse_cgc":0,"t_coarse":0,"t_comm":0,"t_total":15985},"final":{"t_fpga":2993,"t_coarse_cgc":1344,"t_coarse":448,"t_comm":616,"t_total":4057},"reduction_percent":74.6199562089,"moved":[2],"steps":1}}
  {"id":3,"status":"deadline_exceeded","reason":"fuel-exhausted","steps":50}
  {"id":4,"status":"error","kind":"io:Sys_error","message":"nope.mc: No such file or directory (request 4)"}
  {"id":5,"status":"ok","verb":"health","payload":{"uptime_ms":T,"queue_depth":0,"draining":false,"accepted":6,"completed":2,"errors":2,"deadline_exceeded":1,"rejected":0,"poisoned":0}}
  $ cat serve-stats.txt
  hypar serve: drained (eof): accepted=6 completed=3 errors=2 deadline-exceeded=1 rejected=0 poisoned=0

SIGTERM drains gracefully: the server stops accepting, finishes what it
has, prints the stats line and exits 0:

  $ mkfifo req.fifo
  $ hypar serve < req.fifo > sig.jsonl 2> sig-stats.txt &
  $ exec 9> req.fifo
  $ printf '{"id":1,"verb":"faults","file":"faults.spec"}\n' >&9
  $ while ! grep -q '"id":1' sig.jsonl 2> /dev/null; do sleep 0.05; done
  $ kill -TERM $!
  $ wait $!
  $ exec 9>&-
  $ cat sig.jsonl
  {"id":1,"status":"ok","verb":"faults","payload":{"spec":{"seed": 7, "faults": [{"kind": "dead-node", "cgc": 0, "row": 1, "col": 1, "unit": "both"}, {"kind": "dead-cgc", "cgc": 1}]}}}
  $ cat sig-stats.txt
  hypar serve: drained (signal): accepted=1 completed=1 errors=0 deadline-exceeded=0 rejected=0 poisoned=0

--socket refuses to clobber an existing path:

  $ touch sock.here
  $ hypar serve --socket sock.here
  hypar: serve: socket path sock.here already exists
  [2]

soak drives seeded requests through an in-process supervised session.
Chaos decisions are keyed by request digests, never worker identity, so
the response digest is independent of --jobs (the supervisor counter
line is timing-sensitive, so only the digest and verdict are compared):

  $ hypar soak --seed 1 --count 12 --jobs 1 --chaos none | grep -E 'digest:|baseline:|result:' > soak1.txt
  $ hypar soak --seed 1 --count 12 --jobs 4 --chaos none | grep -E 'digest:|baseline:|result:' > soak4.txt
  $ cmp soak1.txt soak4.txt
  $ grep -E 'baseline:|result:' soak1.txt
    baseline: match
  result: PASS

A crash fault on a specific request is healed invisibly: the worker is
respawned, the request is retried and every id still gets exactly one
response:

  $ cat > crashy.chaos <<'EOF'
  > seed 1
  > crash-on 2
  > EOF
  $ hypar soak --seed 1 --count 12 --jobs 2 --chaos crashy.chaos | grep -E 'responses:|result:'
    responses: 12/12 (ok=12)
  result: PASS

A malformed chaos spec is rejected up front with the offending line
(the full directive syntax follows; only the diagnostic matters here):

  $ printf 'crash twelve\n' > bad.chaos
  $ hypar soak --chaos bad.chaos 2>&1 | head -1
  hypar: bad.chaos: line 1: crash: expected a percentage like 5%, got "twelve"

Bytecode frontend: the same pipeline accepts hand-written .hbc programs
with no C source at all:

  $ hypar kernels sumsq.hbc
  sumsq.hbc
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                1 |           5 |                 6 |           30

  $ hypar opt sumsq.hbc
  sumsq.hbc: 3 blocks / 13 instrs -> 3 blocks / 7 instrs (-6)

Mini-C compiles down to bytecode, and the decompiled program partitions
exactly like the original source:

  $ hypar compile-bc fir.mc -o fir.hbc
  $ head -4 fir.hbc
  .array x 64 16
  .array h 8 16
  .array y 64 16
  .local i__1_0 16

  $ hypar partition fir.hbc -t 8000
  partitioning of fir.hbc on A_FPGA=1500, two 2x2 CGCs (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057  [met]
    met after 1 movement(s)
    reduction: 74.6%

A malformed bytecode file is rejected with a position, not a crash:

  $ hypar kernels bad.hbc
  bad.hbc:3:3: unknown mnemonic "stor"
  [2]

An unknown extension is refused before any work happens:

  $ hypar kernels faults.spec
  hypar: faults.spec: unsupported input (expected .mc Mini-C, .hbc bytecode or .ir serialised CDFG)
  [2]

The profiling interpreter has two execution backends — the compiled
flat executor (the default) and the original tree-walking oracle — and
everything the CLI prints must be byte-identical across them.  --interp
selects the backend explicitly:

  $ hypar profile fir.mc > prof-compiled.txt
  $ hypar profile fir.mc --interp tree > prof-tree.txt
  $ cmp prof-compiled.txt prof-tree.txt

  $ hypar partition fir.mc -t 8000 > part-compiled.txt
  $ hypar partition fir.mc -t 8000 --interp tree > part-tree.txt
  $ cmp part-compiled.txt part-tree.txt

HYPAR_INTERP=tree is the environment-variable equivalent, honoured by
every subcommand including serve:

  $ printf '{"id":1,"verb":"partition","file":"fir.mc","timing":8000}\n' > one.jsonl
  $ hypar serve < one.jsonl 2> /dev/null > serve-compiled.jsonl
  $ HYPAR_INTERP=tree hypar serve < one.jsonl 2> /dev/null > serve-tree.jsonl
  $ cmp serve-compiled.jsonl serve-tree.jsonl
