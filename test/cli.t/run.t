The hypar CLI end to end on a small FIR kernel.

Kernel analysis (Table-1 style):

  $ hypar analyze fir.mc --top 3
  fir.mc
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                2 |         448 |                 8 |         3584
                3 |          56 |                 4 |          224
                1 |          56 |                 2 |          112

Partitioning against a tight constraint moves the inner loop:

  $ hypar partition fir.mc -t 8000
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057  [met]
    met after 1 movement(s)
    reduction: 74.6%

An infeasible constraint exits non-zero:

  $ hypar partition fir.mc -t 1
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 1):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985
    step 1: move BB2 -> t_fpga=2993 t_coarse=448 (=1344 CGC cycles) t_comm=616 t_total=4057
    step 2: move BB3 -> t_fpga=1425 t_coarse=504 (=1512 CGC cycles) t_comm=616 t_total=2545
    step 3: move BB1 -> t_fpga=25 t_coarse=523 (=1568 CGC cycles) t_comm=10 t_total=558
    INFEASIBLE
    reduction: 96.5%
  [1]

The CFG export is valid DOT:

  $ hypar dot fir.mc | head -3
  digraph cfg {
    node [shape=box fontname="monospace"];
    n0 [label="BB0 entry\n1 instrs"];

The IR dump round-trips through any subcommand:

  $ hypar dump fir.mc > fir.ir
  $ hypar analyze fir.ir --top 1
  fir.ir
  Basic Block no. | exec. freq. | Operations weight | Total weight
  ----------------+-------------+-------------------+-------------
                2 |         448 |                 8 |         3584

Value-range analysis flags the genuine width hazards (the int16 MAC
accumulator) and proves the loop counters:

  $ hypar ranges fir.mc
  s__2#2 width=16 inferred=[-35184372088832, 35184372088832] declared=[-32768, 32767] OVERFLOW RISK
  t#10 width=16 inferred=[-549755813888, 549755813888] declared=[-32768, 32767] OVERFLOW RISK

Baselines compare the paper's greedy against alternatives:

  $ hypar baselines fir.mc -t 8000
  strategy                       moves            final    met    evals
  paper greedy (Eq.1 weight)         1             4057   true        2
  benefit greedy                     1             4057   true        5
  loop greedy (whole loops)          1             4057   true        2
  random order (seed 1)              1             4057   true        2
  exhaustive (top 12)                1             4057   true        8

The design-space sweep covers an A_FPGA x CGC grid:

  $ hypar sweep fir.mc -t 8000 | head -4
    A_FPGA       CGCs          initial            final  reduction   moved
       500    one 2x2            26737             4057      84.8%       1
       500    two 2x2            26737             4057      84.8%       1
       500  three 2x2            26737             4057      84.8%       1

The linter warns about the FIR kernel's int16 MAC accumulator but exits
zero — warnings alone never fail:

  $ hypar lint fir.mc
  fir.mc:7:9: warning W008 [width-overflow]: "s" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  fir.mc:8:9: warning W008 [width-overflow]: "t" (width 16) may overflow: inferred range [-549755813888, 549755813888] exceeds [-32768, 32767]
  2 warnings

Denying everything except the width widening makes it a clean CI gate:

  $ hypar lint fir.mc --deny W001 --deny W002 --deny W003 --deny W004 \
  >   --deny W005 --deny W006 --deny W007 --deny W009 > /dev/null
  $ echo $?
  0

A deliberately messy kernel trips every diagnostic family, and --deny
turns that into a failing exit code:

  $ hypar lint dirty.mc --deny all
  dirty.mc:2:5: warning W002 [unused-parameter]: parameter "w" of "scale" is never read
  dirty.mc:4:9: warning W001 [unused-variable]: variable "unused" is never read
  dirty.mc:5:9: warning W008 [width-overflow]: "x" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:6:5: warning W003 [dead-assignment]: value assigned to "x" is never read
  dirty.mc:8:9: warning W005 [constant-condition]: condition is always false
  dirty.mc:9:9: warning W004 [unreachable-code]: statement is unreachable (condition is always false)
  dirty.mc:11:15: warning W007 [shift-out-of-range]: shift amount of '<<' may be outside 0..31 (range [40, 40])
  dirty.mc:12:9: warning W008 [width-overflow]: "q" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:12:13: warning W006 [possible-div-by-zero]: right operand of '/' is always zero
  dirty.mc:17:9: warning W008 [width-overflow]: "acc" (width 16) may overflow: inferred range [-35184372088832, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:18:9: warning W008 [width-overflow]: "i" (width 16) may overflow: inferred range [0, 35184372088832] exceeds [-32768, 32767]
  dirty.mc:21:9: warning W009 [induction-write]: loop induction variable "i" is written inside the loop body
  12 warnings
  hypar: denied lint codes present: W001, W002, W003, W004, W005, W006, W007, W008, W009
  [1]

So does a warning budget:

  $ hypar lint dirty.mc --max-warnings 3 > /dev/null
  hypar: 12 warnings exceed --max-warnings 3
  [1]

Machine-readable output for editor/CI integration:

  $ hypar lint dirty.mc --format=json | head -5
  {
    "file": "dirty.mc",
    "count": 12,
    "diagnostics": [
      {"code": "W002", "name": "unused-parameter", "line": 2, "col": 5, "message": "parameter \"w\" of \"scale\" is never read"},

--verify-ir re-checks the IR invariants around every pass; a clean
compile is unaffected:

  $ hypar partition fir.mc -t 8000 --verify-ir | head -2
  partitioning of fir.mc on A_FPGA=1500, two 2x2 CGCs (constraint 8000):
    initial (all-FPGA): t_fpga=15985 t_coarse=0 (=0 CGC cycles) t_comm=0 t_total=15985

A hand-corrupted IR file (it reads a register nothing defines) is
rejected before partitioning starts:

  $ hypar partition broken.ir -t 100 --verify-ir
  hypar: IR verification failed after "broken.ir":
  defs-before-uses(entry): registers read before any definition: ghost#7
  [3]
