(* Golden oracle tests for the compiled profiling backend: the flattened
   executor (Compile/Exec) must produce Interp.result values byte-identical
   to the tree-walking interpreter — on the four benchmark applications,
   on the bundled bytecode examples, and on the runtime edge cases (fuel
   exhaustion, cooperative polling, every Runtime_error message). *)

module Ir = Hypar_ir
module Interp = Hypar_profiling.Interp
module Exec = Hypar_profiling.Exec
module Compile = Hypar_profiling.Compile

let compile = Hypar_minic.Driver.compile_exn

let edge = Alcotest.(pair (pair int int) int)
let arrays = Alcotest.(list (pair string (array int)))

let check_same what (tree : Interp.result) (comp : Interp.result) =
  Alcotest.(check (array int))
    (what ^ ": exec_freq") tree.Interp.exec_freq comp.Interp.exec_freq;
  Alcotest.(check (array int)) (what ^ ": mem_reads") tree.mem_reads comp.mem_reads;
  Alcotest.(check (array int)) (what ^ ": mem_writes") tree.mem_writes comp.mem_writes;
  Alcotest.(check (list edge)) (what ^ ": edge_freq") tree.edge_freq comp.edge_freq;
  Alcotest.(check int) (what ^ ": instrs_executed") tree.instrs_executed
    comp.instrs_executed;
  Alcotest.(check int) (what ^ ": blocks_executed") tree.blocks_executed
    comp.blocks_executed;
  Alcotest.(check (option int)) (what ^ ": return_value") tree.return_value
    comp.return_value;
  Alcotest.(check arrays) (what ^ ": arrays") tree.arrays comp.arrays

(* Run both backends under identical parameters and require the same
   outcome: equal results, or the same exception with the same payload.
   [mk_poll] is a factory so each run gets a fresh (stateful) hook. *)
type outcome =
  | Value of Interp.result
  | Error_msg of string
  | Fuel of int
  | Raised of string

type runner =
  ?fuel:int ->
  ?max_steps:int ->
  ?poll:(unit -> unit) ->
  ?inputs:(string * int array) list ->
  Ir.Cdfg.t ->
  Interp.result

let outcome ?fuel ?max_steps ?mk_poll ?inputs (run : runner) cdfg =
  let poll = Option.map (fun f -> f ()) mk_poll in
  match run ?fuel ?max_steps ?poll ?inputs cdfg with
  | r -> Value r
  | exception Interp.Runtime_error m -> Error_msg m
  | exception Interp.Fuel_exhausted { steps } -> Fuel steps
  | exception e -> Raised (Printexc.to_string e)

let show_outcome = function
  | Value _ -> "a result"
  | Error_msg m -> Printf.sprintf "Runtime_error %S" m
  | Fuel s -> Printf.sprintf "Fuel_exhausted { steps = %d }" s
  | Raised s -> s

let check_outcomes what a b =
  match (a, b) with
  | Value ta, Value tb -> check_same what ta tb
  | Error_msg ma, Error_msg mb ->
    Alcotest.(check string) (what ^ ": error message") ma mb
  | Fuel sa, Fuel sb -> Alcotest.(check int) (what ^ ": exhausted steps") sa sb
  | Raised ra, Raised rb -> Alcotest.(check string) (what ^ ": exception") ra rb
  | a, b ->
    Alcotest.failf "%s: tree %s but compiled %s" what (show_outcome a)
      (show_outcome b)

let check_both ?fuel ?max_steps ?mk_poll ?inputs what cdfg =
  check_outcomes what
    (outcome ?fuel ?max_steps ?mk_poll ?inputs Interp.run cdfg)
    (outcome ?fuel ?max_steps ?mk_poll ?inputs Exec.run cdfg)

(* --- the four benchmark applications, field by field --- *)

let apps =
  [
    ("ofdm", Hypar_apps.Ofdm.source, Hypar_apps.Ofdm.inputs ());
    ("jpeg", Hypar_apps.Jpeg.source, Hypar_apps.Jpeg.inputs ());
    ("sobel", Hypar_apps.Sobel.source, Hypar_apps.Sobel.inputs ());
    ("adpcm", Hypar_apps.Adpcm.source, Hypar_apps.Adpcm.inputs ());
  ]

let test_app (name, source, inputs) () =
  let cdfg = compile ~name source in
  check_same name (Interp.run ~inputs cdfg) (Exec.run ~inputs cdfg)

(* --- the bundled bytecode examples --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* resolve the examples directory from either cwd: the test directory
   (dune runtest) or the project root (dune exec test/main.exe) *)
let bytecode_dir () =
  List.find Sys.file_exists
    [ "../examples/bytecode"; "examples/bytecode" ]

let test_bytecode_examples () =
  List.iter
    (fun name ->
      let file = name ^ ".hbc" in
      let src = read_file (Filename.concat (bytecode_dir ()) file) in
      let cdfg = Hypar_bytecode.Driver.compile_exn ~name:file src in
      check_both file cdfg)
    [ "dotprod"; "fib"; "gcd" ]

(* --- compiled-program reuse: one Compile.compile, many Exec.exec --- *)

let test_compile_reuse () =
  let cdfg =
    compile
      {|
int in[8];
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) { s = s + in[i] * in[i]; }
  out[0] = s;
}
|}
  in
  let p = Compile.compile cdfg in
  for seed = 0 to 3 do
    let inputs = [ ("in", Array.init 8 (fun i -> ((i * 7) + seed) mod 11)) ] in
    check_same
      (Printf.sprintf "reuse (seed %d)" seed)
      (Interp.run ~inputs cdfg)
      (Exec.exec ~inputs p)
  done

(* --- fuel: the legacy budget must exhaust at exactly the same unit ---

   The compiled fast path batch-decrements the budget per block, so an
   off-by-one there would move the exhaustion point.  Sweep fuel values
   around the program's exact cost and require identical outcomes. *)

let loop_src =
  {|
int out[1];
void main() {
  int i = 0;
  int s = 0;
  while (i < 50) { s = s + i; i = i + 1; }
  out[0] = s;
}
|}

let test_fuel_boundary () =
  let cdfg = compile loop_src in
  let r = Interp.run cdfg in
  let total = r.Interp.instrs_executed + r.Interp.blocks_executed in
  List.iter
    (fun fuel ->
      check_both ~fuel (Printf.sprintf "fuel=%d (total=%d)" fuel total) cdfg)
    [ 1; 2; total - 2; total - 1; total; total + 1 ]

let test_fuel_exhaustion_message () =
  let cdfg =
    compile
      {|
int out[1];
void main() {
  int i = 0;
  while (i < 1000000) { i = i + 1; }
  out[0] = i;
}
|}
  in
  check_both ~fuel:1000 "fuel message" cdfg

(* --- max_steps: typed exhaustion with identical step counts --- *)

let test_max_steps_boundary () =
  let cdfg = compile loop_src in
  let r = Interp.run cdfg in
  let total = r.Interp.instrs_executed + r.Interp.blocks_executed in
  List.iter
    (fun max_steps ->
      check_both ~max_steps
        (Printf.sprintf "max_steps=%d (total=%d)" max_steps total)
        cdfg)
    [ 1; 7; total - 1; total; total + 1 ]

(* --- poll: same cadence (at least every 1024 units), same call count --- *)

let poll_src =
  {|
int out[1];
void main() {
  int i = 0;
  int s = 0;
  while (i < 2000) { s = s + i; i = i + 1; }
  out[0] = s;
}
|}

let test_poll_cadence () =
  let cdfg = compile poll_src in
  let count (run : runner) =
    let n = ref 0 in
    ignore (run ~poll:(fun () -> incr n) cdfg);
    !n
  in
  let tree = count Interp.run and comp = count Exec.run in
  Alcotest.(check bool) "poll fired" true (tree > 1);
  Alcotest.(check int) "same poll count" tree comp

let test_poll_raises () =
  let cdfg = compile poll_src in
  let mk_poll () =
    let n = ref 0 in
    fun () ->
      incr n;
      if !n = 3 then raise Exit
  in
  check_both ~mk_poll "raising poll" cdfg

(* --- runtime errors: identical messages, byte for byte --- *)

let test_division_by_zero () =
  let cdfg =
    compile {|
int out[1];
int in[1];
void main() { out[0] = 10 / in[0]; }
|}
  in
  check_both "div by zero" cdfg

let test_out_of_bounds () =
  let cdfg = compile {|
int t[4];
void main() { t[4] = 1; }
|} in
  check_both "index 4 of [0,4)" cdfg

let test_negative_index () =
  let cdfg =
    compile {|
int t[4];
int in[1];
void main() { t[in[0] - 1] = 1; }
|}
  in
  check_both "negative index" cdfg

(* The remaining error paths are unreachable from the frontends (the
   typechecker rejects them), so the programs are built directly. *)

let build f =
  let b = Ir.Builder.create () in
  f b;
  Ir.Builder.cdfg b

let test_undefined_read () =
  let cdfg =
    build (fun b ->
        Ir.Builder.declare_array b "out" 1;
        let x = Ir.Builder.fresh_var b "x" in
        Ir.Builder.store b ~arr:"out" (Ir.Builder.imm 0) (Ir.Builder.var x);
        Ir.Builder.finish_block b ~label:"entry" ~term:(Ir.Block.Return None))
  in
  check_both "read of undefined variable" cdfg

let test_undeclared_array () =
  let cdfg =
    build (fun b ->
        let _ = Ir.Builder.load b "t" ~arr:"nosuch" (Ir.Builder.imm 0) in
        Ir.Builder.finish_block b ~label:"entry" ~term:(Ir.Block.Return None))
  in
  check_both "undeclared array" cdfg

let test_store_to_const () =
  let cdfg =
    build (fun b ->
        Ir.Builder.declare_array ~is_const:true ~init:[| 7; 8 |] b "rom" 2;
        Ir.Builder.store b ~arr:"rom" (Ir.Builder.imm 0) (Ir.Builder.imm 1);
        Ir.Builder.finish_block b ~label:"entry" ~term:(Ir.Block.Return None))
  in
  check_both "store to const" cdfg

let test_remainder_by_zero () =
  let cdfg =
    build (fun b ->
        let d = Ir.Builder.fresh_var b "q" in
        Ir.Builder.emit b
          (Ir.Instr.Rem { dst = d; a = Ir.Instr.Imm 5; b = Ir.Instr.Imm 0 });
        Ir.Builder.finish_block b ~label:"entry" ~term:(Ir.Block.Return None))
  in
  check_both "remainder by zero" cdfg

let test_input_errors () =
  let cdfg =
    compile {|
const int rom[2] = { 7, 8 };
int out[1];
void main() { out[0] = rom[0]; }
|}
  in
  check_both ~inputs:[ ("rom", [| 1; 2 |]) ] "input for const array" cdfg;
  check_both ~inputs:[ ("nope", [| 1 |]) ] "input for undeclared array" cdfg

let suite =
  List.map
    (fun ((name, _, _) as app) ->
      Alcotest.test_case ("app " ^ name) `Quick (test_app app))
    apps
  @ [
      Alcotest.test_case "bytecode examples" `Quick test_bytecode_examples;
      Alcotest.test_case "compiled program reuse" `Quick test_compile_reuse;
      Alcotest.test_case "fuel boundary" `Quick test_fuel_boundary;
      Alcotest.test_case "fuel message" `Quick test_fuel_exhaustion_message;
      Alcotest.test_case "max_steps boundary" `Quick test_max_steps_boundary;
      Alcotest.test_case "poll cadence" `Quick test_poll_cadence;
      Alcotest.test_case "poll raises" `Quick test_poll_raises;
      Alcotest.test_case "division by zero" `Quick test_division_by_zero;
      Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
      Alcotest.test_case "negative index" `Quick test_negative_index;
      Alcotest.test_case "undefined read" `Quick test_undefined_read;
      Alcotest.test_case "undeclared array" `Quick test_undeclared_array;
      Alcotest.test_case "store to const" `Quick test_store_to_const;
      Alcotest.test_case "remainder by zero" `Quick test_remainder_by_zero;
      Alcotest.test_case "input errors" `Quick test_input_errors;
    ]
