(* Unit tests for the generic dataflow solver and its bundled analyses. *)

module Ir = Hypar_ir
module D = Ir.Dataflow

let mk name id = { Ir.Instr.vname = name; vid = id; vwidth = 16 }

(* entry: x = 1; y = 2; c = x < y; branch c -> a / b
   a: z = x + y; jump exit
   b: z = x + y; x = 9; jump exit
   exit: w = x + y; return z *)
let diamond () =
  let x = mk "x" 0 and y = mk "y" 1 and z = mk "z" 2 in
  let c = mk "c" 3 and w = mk "w" 4 in
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:
        [
          Ir.Instr.Mov { dst = x; src = Imm 1 };
          Ir.Instr.Mov { dst = y; src = Imm 2 };
          Ir.Instr.Bin { dst = c; op = Ir.Types.Lt; a = Var x; b = Var y };
        ]
      ~term:(Ir.Block.Branch { cond = Var c; if_true = "a"; if_false = "b" })
  in
  let a =
    Ir.Block.make ~label:"a"
      ~instrs:
        [ Ir.Instr.Bin { dst = z; op = Ir.Types.Add; a = Var x; b = Var y } ]
      ~term:(Ir.Block.Jump "exit")
  in
  let b =
    Ir.Block.make ~label:"b"
      ~instrs:
        [
          Ir.Instr.Bin { dst = z; op = Ir.Types.Add; a = Var x; b = Var y };
          Ir.Instr.Mov { dst = x; src = Imm 9 };
        ]
      ~term:(Ir.Block.Jump "exit")
  in
  let exit_b =
    Ir.Block.make ~label:"exit"
      ~instrs:
        [ Ir.Instr.Bin { dst = w; op = Ir.Types.Add; a = Var x; b = Var y } ]
      ~term:(Ir.Block.Return (Some (Var z)))
  in
  Ir.Cfg.of_blocks [ entry; a; b; exit_b ]

let test_reaching () =
  let cfg = diamond () in
  let sol = D.solve (module D.Reaching) cfg in
  (* x at exit entry: the entry def and the redefinition in b both reach *)
  let sites = D.Reaching.sites 0 sol.D.at_entry.(3) in
  Alcotest.(check (list (pair int int)))
    "x defs reaching exit"
    [ (0, 0); (2, 1) ]
    (List.map (fun (p : D.pos) -> (p.D.block, p.D.index)) sites);
  (* z at exit: one def per arm *)
  let z_sites = D.Reaching.sites 2 sol.D.at_entry.(3) in
  Alcotest.(check int) "two z defs reach exit" 2 (List.length z_sites);
  (* inside the entry block nothing reaches yet *)
  Alcotest.(check (list (pair int int)))
    "nothing reaches the entry" []
    (List.map
       (fun (p : D.pos) -> (p.D.block, p.D.index))
       (D.Reaching.sites 0 sol.D.at_entry.(0)))

let test_avail () =
  let cfg = diamond () in
  let sol = D.solve (module D.Avail) cfg in
  let key =
    match Ir.Instr.expr_key (List.nth (Ir.Cfg.block cfg 1).Ir.Block.instrs 0) with
    | Some k -> k
    | None -> Alcotest.fail "x + y has an expression key"
  in
  (* x + y is computed on both arms, but b then redefines x — so it is
     not available at the join *)
  Alcotest.(check bool)
    "x + y available after a" true
    (D.Avail.find key sol.D.at_exit.(1) <> None);
  Alcotest.(check bool)
    "x + y killed by b's redefinition" true
    (D.Avail.find key sol.D.at_exit.(2) = None);
  Alcotest.(check bool)
    "x + y not available at the join" true
    (D.Avail.find key sol.D.at_entry.(3) = None)

let test_assigned () =
  let cfg = diamond () in
  let sol = D.solve (module D.Assigned) cfg in
  Alcotest.(check bool) "x assigned into exit" true
    (D.Assigned.mem 0 sol.D.at_entry.(3));
  Alcotest.(check bool) "z assigned into exit (both arms)" true
    (D.Assigned.mem 2 sol.D.at_entry.(3));
  Alcotest.(check bool) "nothing assigned into entry" false
    (D.Assigned.mem 0 sol.D.at_entry.(0));
  Alcotest.(check bool) "w not assigned into exit" false
    (D.Assigned.mem 4 sol.D.at_entry.(3))

(* entry: x = 7; branch (x < 10) -> hot / cold
   hot: y = x + 1; jump exit      (taken: the condition is constant true)
   cold: y = 0; jump exit         (statically dead)
   exit: return y *)
let constant_branch () =
  let x = mk "x" 0 and y = mk "y" 1 and c = mk "c" 2 in
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:
        [
          Ir.Instr.Mov { dst = x; src = Imm 7 };
          Ir.Instr.Bin { dst = c; op = Ir.Types.Lt; a = Var x; b = Imm 10 };
        ]
      ~term:(Ir.Block.Branch { cond = Var c; if_true = "hot"; if_false = "cold" })
  in
  let hot =
    Ir.Block.make ~label:"hot"
      ~instrs:
        [ Ir.Instr.Bin { dst = y; op = Ir.Types.Add; a = Var x; b = Imm 1 } ]
      ~term:(Ir.Block.Jump "exit")
  in
  let cold =
    Ir.Block.make ~label:"cold"
      ~instrs:[ Ir.Instr.Mov { dst = y; src = Imm 0 } ]
      ~term:(Ir.Block.Jump "exit")
  in
  let exit_b =
    Ir.Block.make ~label:"exit" ~instrs:[]
      ~term:(Ir.Block.Return (Some (Var y)))
  in
  Ir.Cfg.of_blocks [ entry; hot; cold; exit_b ]

let test_consts_edge_pruning () =
  let cfg = constant_branch () in
  let sol = D.solve (module D.Consts) cfg in
  Alcotest.(check (option int)) "x constant in hot" (Some 7)
    (D.Consts.find 0 sol.D.at_entry.(1));
  (* the not-taken edge is pruned: cold's input stays Unreached *)
  Alcotest.(check bool) "cold is unreached" true
    (sol.D.at_entry.(2) = D.Consts.Unreached);
  (* so the join at exit keeps the hot arm's facts: y = 8 *)
  Alcotest.(check (option int)) "y constant at exit despite the join" (Some 8)
    (D.Consts.find 1 sol.D.at_entry.(3))

let test_copies () =
  let x = mk "x" 0 and y = mk "y" 1 and z = mk "z" 2 in
  (* entry: y = x; jump next.  next: z = y + 1; y = 5; jump last.
     last: return y *)
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:[ Ir.Instr.Mov { dst = y; src = Var x } ]
      ~term:(Ir.Block.Jump "next")
  in
  let next =
    Ir.Block.make ~label:"next"
      ~instrs:
        [
          Ir.Instr.Bin { dst = z; op = Ir.Types.Add; a = Var y; b = Imm 1 };
          Ir.Instr.Mov { dst = y; src = Imm 5 };
        ]
      ~term:(Ir.Block.Jump "last")
  in
  let last =
    Ir.Block.make ~label:"last" ~instrs:[]
      ~term:(Ir.Block.Return (Some (Var y)))
  in
  let cfg = Ir.Cfg.of_blocks [ entry; next; last ] in
  let sol = D.solve (module D.Copies) cfg in
  Alcotest.(check bool) "y = x crosses the block boundary" true
    (D.Copies.find 1 sol.D.at_entry.(1) = Some (Ir.Instr.Var x));
  Alcotest.(check bool) "redefinition replaces the copy" true
    (D.Copies.find 1 sol.D.at_entry.(2) = Some (Ir.Instr.Imm 5))

let test_liveness_matches_live () =
  let cfg = diamond () in
  let sol = D.solve (module D.Liveness) cfg in
  let live = Ir.Live.analyse cfg in
  let of_list l = List.map (fun (v : Ir.Instr.var) -> v.Ir.Instr.vname) l in
  let of_map m =
    List.map
      (fun (_, (v : Ir.Instr.var)) -> v.Ir.Instr.vname)
      (D.Int_map.bindings m)
  in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    Alcotest.(check (list string))
      (Printf.sprintf "live-in of %d" i)
      (of_list (Ir.Live.live_in live i))
      (of_map sol.D.at_entry.(i));
    Alcotest.(check (list string))
      (Printf.sprintf "live-out of %d" i)
      (of_list (Ir.Live.live_out live i))
      (of_map sol.D.at_exit.(i))
  done

let test_instr_facts_and_term_fact () =
  let cfg = constant_branch () in
  let sol = D.solve (module D.Consts) cfg in
  (* before the compare in the entry block, x = 7 already holds *)
  (match D.instr_facts (module D.Consts) cfg sol 0 with
  | [ (_, before_mov); (_, before_cmp) ] ->
    Alcotest.(check (option int)) "nothing before the first instr" None
      (D.Consts.find 0 before_mov);
    Alcotest.(check (option int)) "x known before the compare" (Some 7)
      (D.Consts.find 0 before_cmp)
  | _ -> Alcotest.fail "entry has two instructions");
  Alcotest.(check (option int)) "condition known at the terminator" (Some 1)
    (D.Consts.find 2 (D.term_fact (module D.Consts) cfg sol 0))

let test_iterations_bounded () =
  (* an acyclic CFG needs exactly one transfer per reachable block *)
  let cfg = diamond () in
  let sol = D.solve (module D.Reaching) cfg in
  Alcotest.(check int) "one pass over an acyclic graph" 4 sol.D.iterations

let test_unreachable_blocks_keep_init () =
  let x = mk "x" 0 in
  let entry =
    Ir.Block.make ~label:"entry"
      ~instrs:[ Ir.Instr.Mov { dst = x; src = Imm 1 } ]
      ~term:(Ir.Block.Return None)
  in
  let orphan =
    Ir.Block.make ~label:"orphan"
      ~instrs:[ Ir.Instr.Mov { dst = x; src = Imm 2 } ]
      ~term:(Ir.Block.Return None)
  in
  let cfg = Ir.Cfg.of_blocks [ entry; orphan ] in
  let sol = D.solve (module D.Assigned) cfg in
  (* the orphan was never visited: both sides stay at the optimistic top *)
  Alcotest.(check bool) "orphan entry is top" true
    (sol.D.at_entry.(1) = D.Assigned.All);
  Alcotest.(check bool) "orphan exit is top" true
    (sol.D.at_exit.(1) = D.Assigned.All)

let test_refine_is_stable_without_widening () =
  let cfg = diamond () in
  let sol = D.solve (module D.Consts) cfg in
  let refined = D.refine (module D.Consts) cfg sol in
  for i = 0 to Ir.Cfg.block_count cfg - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "entry fact of %d unchanged" i)
      true
      (D.Consts.equal sol.D.at_entry.(i) refined.D.at_entry.(i));
    Alcotest.(check bool)
      (Printf.sprintf "exit fact of %d unchanged" i)
      true
      (D.Consts.equal sol.D.at_exit.(i) refined.D.at_exit.(i))
  done

let suite =
  [
    Alcotest.test_case "reaching: defs at a join" `Quick test_reaching;
    Alcotest.test_case "avail: must-availability across a diamond" `Quick
      test_avail;
    Alcotest.test_case "assigned: definite assignment" `Quick test_assigned;
    Alcotest.test_case "consts: constant-branch edge pruning" `Quick
      test_consts_edge_pruning;
    Alcotest.test_case "copies: cross-block copy facts" `Quick test_copies;
    Alcotest.test_case "liveness: agrees with Live.analyse" `Quick
      test_liveness_matches_live;
    Alcotest.test_case "instr_facts / term_fact replay" `Quick
      test_instr_facts_and_term_fact;
    Alcotest.test_case "iterations: one pass on acyclic CFGs" `Quick
      test_iterations_bounded;
    Alcotest.test_case "unreachable blocks keep init" `Quick
      test_unreachable_blocks_keep_init;
    Alcotest.test_case "refine: no-op at a fixpoint" `Quick
      test_refine_is_stable_without_widening;
  ]
