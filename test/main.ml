(* every simplify/optimize in the whole suite runs under the IR invariant
   verifier (Hypar_ir.Verify); a pass that corrupts the IR fails loudly
   with the pass name rather than skewing downstream numbers *)
let () = Hypar_ir.Passes.verify_passes := true

(* likewise, every Engine.run in the suite cross-checks its delta-updated
   times against the full recharacterisation (Engine.Delta_mismatch) *)
let () = Hypar_core.Engine.check_incremental := true

let () =
  Alcotest.run "hypar"
    [
      ("types", Test_types.suite);
      ("instr", Test_instr.suite);
      ("dfg", Test_dfg.suite);
      ("ir_misc", Test_ir_misc.suite);
      ("cfg", Test_cfg.suite);
      ("loop", Test_loop.suite);
      ("live", Test_live.suite);
      ("dataflow", Test_dataflow.suite);
      ("serialize", Test_serialize.suite);
      ("passes", Test_passes.suite);
      ("verify", Test_verify.suite);
      ("opt", Test_opt.suite);
      ("licm", Test_licm.suite);
      ("cfg_simplify", Test_cfg_simplify.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("sugar", Test_sugar.suite);
      ("typecheck", Test_typecheck.suite);
      ("fuzz", Test_fuzz.suite);
      ("fuzzgen", Test_fuzzgen.suite);
      ("bytecode", Test_bytecode.suite);
      ("inline", Test_inline.suite);
      ("lower", Test_lower.suite);
      ("interp", Test_interp.suite);
      ("compile", Test_compile.suite);
      ("profile", Test_profile.suite);
      ("analysis", Test_analysis.suite);
      ("range", Test_range.suite);
      ("lint", Test_lint.suite);
      ("analyze", Test_analyze.suite);
      ("temporal", Test_temporal.suite);
      ("fine_map", Test_fine_map.suite);
      ("bitstream", Test_bitstream.suite);
      ("reconfig", Test_reconfig.suite);
      ("schedule", Test_schedule.suite);
      ("schedule_sim", Test_schedule_sim.suite);
      ("binding", Test_binding.suite);
      ("coarse_map", Test_coarse_map.suite);
      ("modulo", Test_modulo.suite);
      ("context", Test_context.suite);
      ("comm", Test_comm.suite);
      ("platform", Test_platform.suite);
      ("engine", Test_engine.suite);
      ("flow", Test_flow.suite);
      ("energy", Test_energy.suite);
      ("explore", Test_explore.suite);
      ("resilience", Test_resilience.suite);
      ("pipeline", Test_pipeline.suite);
      ("apps", Test_apps.suite);
      ("sobel", Test_sobel.suite);
      ("adpcm", Test_adpcm.suite);
      ("decode", Test_decode.suite);
      ("synth", Test_synth.suite);
      ("baselines", Test_baselines.suite);
      ("report", Test_report.suite);
      ("obs", Test_obs.suite);
      ("server", Test_server.suite);
      ("soak", Test_soak.suite);
      ("properties", Test_props.suite);
    ]
