(* Chaos spec parse/print, chaos regression fixture replay, and
   quarantine journal persistence for the self-healing serve pool. *)

module Chaos = Hypar_server.Chaos
module Soak = Hypar_server.Soak
module Supervisor = Hypar_server.Supervisor
module Protocol = Hypar_server.Protocol

(* ---- chaos spec parse / print ------------------------------------------- *)

(* one of every directive, including both delay spellings *)
let full_spec =
  {
    Chaos.seed = 9;
    faults =
      [
        Chaos.Crash 5;
        Chaos.Crash_on 3;
        Chaos.Wedge { percent = 2; ms = 400 };
        Chaos.Wedge_on { seq = 4; ms = 250 };
        Chaos.Delay { percent = 10; min_ms = 1; max_ms = 5 };
        Chaos.Delay { percent = 7; min_ms = 3; max_ms = 3 };
        Chaos.Drop 1;
        Chaos.Truncate 2;
        Chaos.Slowloris { percent = 5; ms = 1 };
      ];
  }

let test_chaos_roundtrip () =
  List.iter
    (fun spec ->
      match Chaos.of_string (Chaos.to_text spec) with
      | Ok spec' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip of %S" (Chaos.to_text spec))
          true (spec = spec')
      | Error e -> Alcotest.fail e)
    [ Chaos.none; Chaos.default; full_spec ]

let test_chaos_comments () =
  match Chaos.of_string "# a comment\n\n  seed 4 # trailing\ncrash 10% # boom" with
  | Ok spec ->
    Alcotest.(check bool) "comments and blanks skipped" true
      (spec = { Chaos.seed = 4; faults = [ Chaos.Crash 10 ] })
  | Error e -> Alcotest.fail e

let check_parse_error text fragment =
  match Chaos.of_string text with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed but should not" text)
  | Error msg ->
    let contains =
      let n = String.length fragment in
      let rec go i =
        i + n <= String.length msg
        && (String.sub msg i n = fragment || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%S error mentions %S (got %S)" text fragment msg)
      true contains

let test_chaos_errors () =
  check_parse_error "crash twelve" "line 1";
  check_parse_error "seed 1\nfrobnicate 3%" "line 2";
  check_parse_error "seed 1\nfrobnicate 3%" "unknown directive";
  check_parse_error "crash 150%" "<= 100";
  check_parse_error "delay 5% 9..3" "empty range";
  check_parse_error "wedge 5%" "wedge needs PERCENT MS";
  check_parse_error "seed -3" "non-negative"

let test_chaos_of_arg () =
  Alcotest.(check bool) "none" true (Chaos.of_arg "none" = Ok None);
  Alcotest.(check bool) "off" true (Chaos.of_arg "off" = Ok None);
  Alcotest.(check bool) "default" true
    (Chaos.of_arg "default" = Ok (Some Chaos.default));
  Alcotest.(check bool) "missing file" true
    (Result.is_error (Chaos.of_arg "no-such-file.chaos"))

(* Percent-fault decisions hash the request digest, never the sequence
   number — the jobs-independence of a whole campaign reduces to this. *)
let test_chaos_decisions () =
  let spec = { Chaos.seed = 3; faults = [ Chaos.Crash 50 ] } in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "crash roll for %S ignores seq" key)
        (Chaos.crashes spec ~seq:1 ~key ~attempt:1)
        (Chaos.crashes spec ~seq:9999 ~key ~attempt:1))
    [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ];
  let targeted = { Chaos.seed = 0; faults = [ Chaos.Wedge_on { seq = 3; ms = 100 } ] } in
  Alcotest.(check bool) "wedge-on fires on its seq, first attempt" true
    (Chaos.wedge_ms targeted ~seq:3 ~key:"k" ~attempt:1 = Some 100);
  Alcotest.(check bool) "wedge-on spares the retry" true
    (Chaos.wedge_ms targeted ~seq:3 ~key:"k" ~attempt:2 = None);
  Alcotest.(check bool) "wedge-on spares other requests" true
    (Chaos.wedge_ms targeted ~seq:2 ~key:"k" ~attempt:1 = None)

(* ---- fixture replay ------------------------------------------------------ *)

let load_fixture name =
  match Chaos.load (Filename.concat "chaos" name) with
  | Ok spec -> spec
  | Error e -> Alcotest.fail e

let soak_with ?(grace = 2000) ?(count = 8) chaos =
  let cfg =
    {
      Soak.default_config with
      seed = 1;
      count;
      jobs = 2;
      chaos;
      grace_ms = grace;
      compare_baseline = false;
    }
  in
  match Soak.run cfg with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let check_clean_pass r ~count =
  Alcotest.(check (list string)) "no invariant failures" [] r.Soak.failures;
  Alcotest.(check int) "every request answered" count r.Soak.responses;
  Alcotest.(check int) "no duplicates" 0 r.Soak.duplicates;
  Alcotest.(check int) "pool healed to full width" 2
    r.Soak.stats.Supervisor.live_workers

let test_fixture_crash () =
  let r = soak_with (Some (load_fixture "crash-on-second.chaos")) in
  check_clean_pass r ~count:8;
  Alcotest.(check bool) "a worker crashed" true
    (r.Soak.stats.Supervisor.crashes >= 1);
  Alcotest.(check bool) "the request was retried" true
    (r.Soak.stats.Supervisor.retries >= 1);
  Alcotest.(check bool) "a replacement was spawned" true
    (r.Soak.stats.Supervisor.respawns >= 1);
  Alcotest.(check int) "retry succeeded, nothing quarantined" 0
    r.Soak.stats.Supervisor.quarantines

let test_fixture_wedge () =
  let r = soak_with (Some (load_fixture "wedge-past-deadline.chaos")) in
  check_clean_pass r ~count:8;
  Alcotest.(check bool) "the stalled worker was declared wedged" true
    (r.Soak.stats.Supervisor.wedges >= 1);
  Alcotest.(check bool) "the request was retried" true
    (r.Soak.stats.Supervisor.retries >= 1);
  Alcotest.(check int) "retry succeeded, nothing quarantined" 0
    r.Soak.stats.Supervisor.quarantines

(* A chaos delay heartbeats through its stall, so even a stall longer
   than the grace must never trip wedge detection — the exact stall
   that, without heartbeats, the wedge fixture proves IS detected. *)
let test_delay_is_innocent () =
  let chaos =
    {
      Chaos.seed = 1;
      faults = [ Chaos.Delay { percent = 100; min_ms = 2500; max_ms = 2500 } ];
    }
  in
  let r = soak_with ~grace:2000 ~count:2 (Some chaos) in
  check_clean_pass r ~count:2;
  Alcotest.(check int) "no wedges" 0 r.Soak.stats.Supervisor.wedges;
  Alcotest.(check int) "no retries" 0 r.Soak.stats.Supervisor.retries

(* Chaos off: supervision must be a pure refactoring of the plain pool. *)
let test_chaos_free_baseline () =
  let cfg =
    { Soak.default_config with seed = 2; count = 6; jobs = 2; chaos = None }
  in
  match Soak.run cfg with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_clean_pass r ~count:6;
    Alcotest.(check bool) "matches the unsupervised baseline" true
      (r.Soak.baseline_match = Some true);
    Alcotest.(check int) "no respawns" 0 r.Soak.stats.Supervisor.respawns;
    Alcotest.(check int) "no crashes" 0 r.Soak.stats.Supervisor.crashes

(* ---- quarantine journal persistence -------------------------------------- *)

let test_quarantine_persists () =
  let path = Filename.temp_file "hypar-quarantine" ".journal" in
  Sys.remove path;
  let request =
    match Protocol.parse_request {|{"id":7,"verb":"health"}|} with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let opts =
    {
      Supervisor.default_options with
      max_retries = 0;
      quarantine_path = Some path;
    }
  in
  let lock = Mutex.create () in
  let seen = ref [] in
  let deliver ~seq:_ resp _events =
    Mutex.lock lock;
    seen := resp :: !seen;
    Mutex.unlock lock
  in
  let round execute =
    seen := [];
    match
      Supervisor.start ~jobs:1 opts ~queue_capacity:4
        ~deadline_ms:(fun _ -> None)
        ~execute ~deliver
    with
    | Error e -> Alcotest.fail e
    | Ok t ->
      (match Supervisor.submit t ~seq:1 request with
      | Supervisor.Admitted -> ()
      | _ -> Alcotest.fail "request not admitted");
      let stats = Supervisor.drain t in
      (stats, !seen)
  in
  let stats1, seen1 = round (fun ~heartbeat:_ _ -> failwith "boom") in
  Alcotest.(check int) "quarantined after exhausting retries" 1
    stats1.Supervisor.quarantines;
  Alcotest.(check int) "the crash was counted" 1 stats1.Supervisor.crashes;
  (match seen1 with
  | [ Protocol.Poisoned { signature; attempts; _ } ] ->
    Alcotest.(check string) "signature names the exception" "crash:Failure"
      signature;
    Alcotest.(check int) "one attempt was made" 1 attempts
  | _ -> Alcotest.fail "expected exactly one poisoned envelope");
  Alcotest.(check bool) "journal validates" true
    (Supervisor.validate_quarantine path = Ok ());
  (* a restarted supervisor reloads the journal: the digest is refused
     at admission, no worker is sacrificed, nothing is re-journalled *)
  let reached_worker = Atomic.make false in
  let stats2, seen2 =
    round (fun ~heartbeat:_ _ ->
        Atomic.set reached_worker true;
        failwith "boom")
  in
  Alcotest.(check bool) "never reached a worker" false
    (Atomic.get reached_worker);
  Alcotest.(check int) "not quarantined again" 0 stats2.Supervisor.quarantines;
  (match seen2 with
  | [ Protocol.Poisoned { attempts; _ } ] ->
    Alcotest.(check int) "refused at admission (zero attempts)" 0 attempts
  | _ -> Alcotest.fail "expected an immediate poisoned envelope");
  Sys.remove path

let suite =
  [
    Alcotest.test_case "chaos: parse/print round-trip" `Quick
      test_chaos_roundtrip;
    Alcotest.test_case "chaos: comments and blanks" `Quick test_chaos_comments;
    Alcotest.test_case "chaos: parse errors" `Quick test_chaos_errors;
    Alcotest.test_case "chaos: --chaos argument" `Quick test_chaos_of_arg;
    Alcotest.test_case "chaos: decisions ignore worker identity" `Quick
      test_chaos_decisions;
    Alcotest.test_case "fixture: crash on second request" `Quick
      test_fixture_crash;
    Alcotest.test_case "fixture: wedge past deadline" `Quick test_fixture_wedge;
    Alcotest.test_case "delay heartbeats through its stall" `Quick
      test_delay_is_innocent;
    Alcotest.test_case "chaos-free supervision equals baseline" `Quick
      test_chaos_free_baseline;
    Alcotest.test_case "quarantine journal survives restart" `Quick
      test_quarantine_persists;
  ]
