(* Robustness fuzzing of the frontend: arbitrary input must produce a
   clean, documented error (or compile), never a crash or an undocumented
   exception.  Random bytes and random well-formed programs both come
   from Hypar_fuzzgen — the byte soup from its deterministic Rng, the
   structured programs from its typed generator — so this suite and
   `hypar fuzz` exercise the same distribution. *)

module Driver = Hypar_minic.Driver
module Lexer = Hypar_minic.Lexer
module Parser = Hypar_minic.Parser
module Rng = Hypar_fuzzgen.Rng
module Gen = Hypar_fuzzgen.Gen
module Pp = Hypar_fuzzgen.Pp

(* random bytes over a Mini-C-flavoured alphabet *)
let random_source seed len =
  let rng = Rng.create seed in
  let alphabet = "abixy0159 +-*/%&|^<>=!~?:;,(){}[]\n\"intvoidforwhilereturn" in
  String.init len (fun _ -> alphabet.[Rng.int rng (String.length alphabet)])

(* Resource exhaustion is a crash, not a documented error: a catch-all
   would swallow Stack_overflow/Out_of_memory and report them as the
   generic "leaked an exception", losing the reproducer.  Fail fast with
   the offending seed instead. *)
let compiles_or_reports ?seed src =
  let where =
    match seed with None -> "" | Some s -> Printf.sprintf " (seed %d)" s
  in
  match Driver.compile ~name:"fuzz" src with
  | Ok _ -> true
  | Error _ -> true
  | exception Lexer.Error _ -> true (* documented *)
  | exception Parser.Error _ -> true (* documented *)
  | exception Stack_overflow ->
    Alcotest.failf "driver crashed: Stack_overflow%s" where
  | exception Out_of_memory ->
    Alcotest.failf "driver crashed: Out_of_memory%s" where
  | exception _ -> false

let test_lexer_total () =
  for seed = 1 to 200 do
    let src = random_source seed (1 + (seed mod 120)) in
    match Lexer.tokenize src with
    | _tokens -> ()
    | exception Lexer.Error _ -> ()
    | exception e ->
      Alcotest.failf "lexer crashed on seed %d: %s" seed (Printexc.to_string e)
  done

let test_parser_total () =
  for seed = 1 to 200 do
    let src = random_source seed (1 + (seed mod 200)) in
    match Parser.parse_program src with
    | _ast -> ()
    | exception Lexer.Error _ -> ()
    | exception Parser.Error _ -> ()
    | exception e ->
      Alcotest.failf "parser crashed on seed %d: %s" seed (Printexc.to_string e)
  done

let test_driver_total () =
  for seed = 201 to 320 do
    let src = random_source seed (1 + (seed mod 160)) in
    if not (compiles_or_reports ~seed src) then
      Alcotest.failf "driver leaked an exception on seed %d" seed
  done

let test_mutated_valid_programs () =
  (* single-character mutations of generator output keep errors clean:
     near-valid input is a different corner of frontend space than byte
     soup, and the generator supplies unlimited distinct near-misses *)
  for it = 1 to 120 do
    let rng = Rng.create (7000 + it) in
    let base = Gen.source (Rng.int rng 1_000_000) in
    let b = Bytes.of_string base in
    let pos = Rng.int rng (Bytes.length b) in
    Bytes.set b pos "+-;)({".[Rng.int rng 6];
    if not (compiles_or_reports ~seed:it (Bytes.to_string b)) then
      Alcotest.failf "mutation %d at %d leaked an exception" it pos
  done

let test_deep_nesting () =
  (* deeply nested expressions and blocks must not blow the stack *)
  let deep_expr = String.make 400 '(' ^ "1" ^ String.make 400 ')' in
  let src = Printf.sprintf "int out[1];\nvoid main() { out[0] = %s; }" deep_expr in
  Alcotest.(check bool) "deep parens" true (compiles_or_reports src);
  let deep_blocks =
    "int out[1];\nvoid main() { " ^ String.concat "" (List.init 200 (fun _ -> "{ "))
    ^ "out[0] = 1; " ^ String.concat "" (List.init 200 (fun _ -> "} ")) ^ "}"
  in
  Alcotest.(check bool) "deep blocks" true (compiles_or_reports deep_blocks)

(* Random fault specifications — including ones naming hardware the
   platform does not have — must degrade the platform and partition
   without ever raising: faults are data, not control flow. *)

let fault_gen =
  QCheck.Gen.(
    oneof
      [
        (fun (c, r, col, u) ->
          Hypar_resilience.Fault.Dead_node
            {
              cgc = c;
              row = r;
              col;
              unit_kind =
                (match u with
                | 0 -> Hypar_resilience.Fault.Mult
                | 1 -> Hypar_resilience.Fault.Alu
                | _ -> Hypar_resilience.Fault.Both);
            })
        <$> quad (int_range 0 3) (int_range 0 3) (int_range 0 3)
              (int_range 0 2);
        (fun c -> Hypar_resilience.Fault.Dead_cgc c) <$> int_range 0 3;
        (fun p -> Hypar_resilience.Fault.Area_loss (`Percent p))
        <$> int_range 0 100;
        (fun u -> Hypar_resilience.Fault.Area_loss (`Units u))
        <$> int_range 0 2000;
        (fun p -> Hypar_resilience.Fault.Comm_slowdown p)
        <$> int_range 100 400;
        (fun (p, m) -> Hypar_resilience.Fault.Transient
                         { permille = p; max_failures = m })
        <$> pair (int_range 0 1000) (int_range 0 3);
      ])

let spec_arb =
  QCheck.make
    ~print:(fun s -> Hypar_resilience.Spec.to_text s)
    QCheck.Gen.(
      (fun (seed, faults) -> { Hypar_resilience.Fault.seed; faults })
      <$> pair (int_range 0 1000) (list_size (int_range 0 6) fault_gen))

let fuzz_prepared =
  lazy
    (Hypar_core.Flow.prepare ~name:"fuzzfault"
       {|
int in[4];
int out[4];
void main() {
  int i;
  for (i = 0; i < 4; i++) { out[i] = in[i] * 5 + i; }
}
|})

let prop_faults_never_raise =
  QCheck.Test.make ~name:"faults: random specs never make Engine.run raise"
    ~count:60 spec_arb (fun spec ->
      let prepared = Lazy.force fuzz_prepared in
      let platform = List.hd (Hypar_core.Platform.paper_configs ()) in
      match Hypar_resilience.Degrade.apply ~strict:false spec platform with
      | Error e -> QCheck.Test.fail_reportf "non-strict apply failed: %s" e
      | Ok degraded ->
        let r =
          Hypar_core.Engine.run degraded ~timing_constraint:4000
            prepared.Hypar_core.Flow.cdfg prepared.Hypar_core.Flow.profile
        in
        (* the run completes and Eq. 2 still holds on the final state *)
        r.Hypar_core.Engine.final.Hypar_core.Engine.t_total
        = r.Hypar_core.Engine.final.Hypar_core.Engine.t_fpga
          + r.Hypar_core.Engine.final.Hypar_core.Engine.t_coarse
          + r.Hypar_core.Engine.final.Hypar_core.Engine.t_comm)

(* The differential properties below draw from the typed fuzzgen
   generator, as (seed, ast) pairs so QCheck shrinking can descend
   through Hypar_fuzzgen.Shrink.candidates — a failing random program is
   reported as a minimal reproducer, not a page of noise.  Shrink
   candidates that no longer compile are treated as passing (the
   interesting failure preserves compilability). *)

let fuzzgen_arb =
  QCheck.make
    ~print:(fun (seed, ast) ->
      Printf.sprintf "seed %d:\n%s" seed (Pp.program ast))
    ~shrink:(fun (seed, ast) yield ->
      List.iter (fun ast' -> yield (seed, ast')) (Hypar_fuzzgen.Shrink.candidates ast))
    QCheck.Gen.(
      map (fun seed -> (seed, Gen.program seed)) (int_range 1 1_000_000))

let with_compiled src f =
  match Driver.compile ~name:"diff" ~simplify:false src with
  | Ok raw -> f raw
  | Error _ -> true (* shrink artefact: not the failure we are tracking *)

let prop_optimize_differential =
  QCheck.Test.make
    ~name:"passes: optimize preserves interpreter semantics"
    ~count:40 fuzzgen_arb (fun (_seed, ast) ->
      let src = Pp.program ast in
      with_compiled src @@ fun raw ->
      let opt = Hypar_ir.Passes.optimize ~verify:true raw in
      let r_raw = Hypar_profiling.Interp.run raw in
      let r_opt = Hypar_profiling.Interp.run opt in
      if
        r_raw.Hypar_profiling.Interp.return_value
        <> r_opt.Hypar_profiling.Interp.return_value
      then
        QCheck.Test.fail_reportf "return value diverged: %s vs %s"
          (match r_raw.Hypar_profiling.Interp.return_value with
          | Some v -> string_of_int v
          | None -> "none")
          (match r_opt.Hypar_profiling.Interp.return_value with
          | Some v -> string_of_int v
          | None -> "none");
      List.for_all
        (fun (name, contents) ->
          contents = Hypar_profiling.Interp.array_exn r_opt name)
        r_raw.Hypar_profiling.Interp.arrays
      || QCheck.Test.fail_reportf "array contents diverged")

(* Differential testing of the two frontends: a random structured
   program compiled directly, versus compiled to bytecode (compile-bc's
   Emit on the raw lowering) and re-ingested through the bytecode
   frontend's CFG recovery + stack-to-register lowering + optimiser.
   Both CDFGs must pass Verify and produce identical interpreter
   results — the decompilation pipeline loses nothing observable. *)

let prop_bytecode_differential =
  QCheck.Test.make
    ~name:"bytecode: decompiled frontend matches Mini-C frontend"
    ~count:40 fuzzgen_arb (fun (_seed, ast) ->
      let src = Pp.program ast in
      with_compiled src @@ fun direct ->
      let hbc = Hypar_bytecode.Emit.to_string direct in
      let recovered =
        match Hypar_bytecode.Driver.compile ~name:"diff" ~verify_ir:true hbc with
        | Ok cdfg -> cdfg
        | Error e ->
          QCheck.Test.fail_reportf "bytecode frontend rejected emitted code: %s\n%s"
            (Hypar_bytecode.Driver.string_of_error e)
            hbc
      in
      Hypar_ir.Verify.check_exn ~context:"bytecode-differential" recovered;
      let r_direct = Hypar_profiling.Interp.run direct in
      let r_bc = Hypar_profiling.Interp.run recovered in
      if
        r_direct.Hypar_profiling.Interp.return_value
        <> r_bc.Hypar_profiling.Interp.return_value
      then
        QCheck.Test.fail_reportf "return value diverged: %s vs %s\n%s"
          (match r_direct.Hypar_profiling.Interp.return_value with
          | Some v -> string_of_int v
          | None -> "none")
          (match r_bc.Hypar_profiling.Interp.return_value with
          | Some v -> string_of_int v
          | None -> "none")
          hbc;
      List.for_all
        (fun (name, contents) ->
          contents = Hypar_profiling.Interp.array_exn r_bc name)
        r_direct.Hypar_profiling.Interp.arrays
      || QCheck.Test.fail_reportf "array contents diverged via bytecode")

(* Differential testing of the two interpreter backends: on every random
   structured program — compiled raw (-O0), through the full optimiser
   (-O), and round-tripped through the bytecode frontend — the compiled
   executor must produce an Interp.result structurally identical to the
   tree-walking oracle in every field (frequencies, counters, edge
   profile, arrays, return value).  170 seeds x 3 variants = 510 random
   programs per run. *)

let prop_backend_differential =
  QCheck.Test.make
    ~name:"interp: compiled backend matches tree oracle (-O0, -O, bytecode)"
    ~count:170 fuzzgen_arb (fun (seed, ast) ->
      let src = Pp.program ast in
      with_compiled src @@ fun raw ->
      let opt = Hypar_ir.Passes.optimize raw in
      let bc =
        Hypar_bytecode.Driver.compile_exn ~name:"diff"
          (Hypar_bytecode.Emit.to_string raw)
      in
      List.for_all
        (fun (variant, cdfg) ->
          let tree = Hypar_profiling.Interp.run cdfg in
          let comp = Hypar_profiling.Exec.run cdfg in
          tree = comp
          || QCheck.Test.fail_reportf
               "backends diverged on the %s variant of seed %d:\n%s" variant
               seed src)
        [ ("-O0", raw); ("-O", opt); ("bytecode", bc) ])

(* The whole oracle matrix as one property: what `hypar fuzz` judges per
   program, wrapped for QCheck so failures shrink. *)

let prop_oracle_matrix =
  QCheck.Test.make ~name:"fuzzgen: oracle matrix passes on generated programs"
    ~count:60 fuzzgen_arb (fun (_seed, ast) ->
      match Hypar_fuzzgen.Oracle.run (Pp.program ast) with
      | Hypar_fuzzgen.Oracle.Pass -> true
      | verdict ->
        QCheck.Test.fail_reportf "%s"
          (Hypar_fuzzgen.Oracle.verdict_to_string verdict))

(* The serve protocol is the same contract one layer up: any byte soup
   on the wire must come back as a typed envelope, never an escaping
   exception and never a dead worker. *)

let serve_config () =
  {
    Hypar_server.Worker.faults = None;
    backend = None;
    default_deadline_ms = None;
    default_fuel = Some 10_000;
    drain = Hypar_server.Drain.create ~drain_timeout_ms:1000;
    queue_depth = (fun () -> 0);
    on_poll = None;
  }

let envelope_of config line =
  match Hypar_server.Protocol.parse_request line with
  | Error _ -> None
  | Ok req -> (
    match Hypar_server.Worker.execute config req with
    | resp -> Some resp
    | exception e ->
      Alcotest.failf "worker leaked %s on %S" (Printexc.to_string e) line)

let test_protocol_byte_soup () =
  let config = serve_config () in
  let alphabet = {|{}[]":,0123456789.truefalsenull-+eE \verbpartitionfile|} in
  for seed = 1 to 300 do
    let rng = Rng.create seed in
    let line =
      String.init (1 + (seed mod 80)) (fun _ ->
          alphabet.[Rng.int rng (String.length alphabet)])
    in
    match envelope_of config line with
    | None -> ()
    | Some resp ->
      let rendered = Hypar_server.Protocol.render resp in
      (match Hypar_obs.Jsonv.parse rendered with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "seed %d: envelope not JSON (%s): %s" seed e rendered)
  done

let test_protocol_truncations () =
  (* every prefix of a valid request parses to a typed error or a typed
     envelope — truncated writes cannot wedge or kill the server *)
  let config = serve_config () in
  let full = {|{"id":12,"verb":"partition","file":"/nonexistent.mc","timing":800}|} in
  for len = 0 to String.length full do
    let line = String.sub full 0 len in
    match envelope_of config line with
    | None -> ()
    | Some (Hypar_server.Protocol.Failed _) -> ()
    | Some resp ->
      Alcotest.failf "prefix %d: unexpected %s" len
        (Hypar_server.Protocol.render resp)
  done;
  (* the worker is still alive and answering after all of the above *)
  match envelope_of config {|{"verb":"health"}|} with
  | Some (Hypar_server.Protocol.Done _) -> ()
  | _ -> Alcotest.fail "worker dead after truncation storm"

let test_worker_crash_rank () =
  (* resource exhaustion must surface as a crash:* failure naming the
     request, not as the generic error envelope; tested through the
     extracted envelope function so no stack actually overflows here *)
  let check exn expected =
    match Hypar_server.Worker.envelope_of_exn (Some 41) exn with
    | Hypar_server.Protocol.Failed { id = Some 41; kind; message } ->
      Alcotest.(check string) "kind" expected kind;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the request" true
        (contains message "request 41")
    | resp ->
      Alcotest.failf "unexpected envelope %s"
        (Hypar_server.Protocol.render resp)
  in
  check Stack_overflow "crash:Stack_overflow";
  check Out_of_memory "crash:Out_of_memory";
  (* environmental I/O failures rank as io:*, also naming the request *)
  check (Sys_error "input.mc: No such file or directory") "io:Sys_error";
  check (Unix.Unix_error (Unix.EACCES, "open", "input.mc")) "io:Unix_error";
  (* ordinary exceptions keep the historical generic shape *)
  match Hypar_server.Worker.envelope_of_exn (Some 7) (Failure "boom") with
  | Hypar_server.Protocol.Failed { id = Some 7; kind = "Failure"; _ } -> ()
  | resp ->
    Alcotest.failf "unexpected envelope %s" (Hypar_server.Protocol.render resp)

let test_worker_io_rank_messages () =
  (* the io:* message carries the underlying detail verbatim plus the
     offending request, so operators can tell a missing input from a
     permissions problem straight from the envelope *)
  (match
     Hypar_server.Worker.envelope_of_exn (Some 3)
       (Sys_error "gone.mc: No such file or directory")
   with
  | Hypar_server.Protocol.Failed { kind = "io:Sys_error"; message; _ } ->
    Alcotest.(check string) "sys message"
      "gone.mc: No such file or directory (request 3)" message
  | resp ->
    Alcotest.failf "unexpected envelope %s" (Hypar_server.Protocol.render resp));
  (match
     Hypar_server.Worker.envelope_of_exn None
       (Unix.Unix_error (Unix.ENOENT, "open", "gone.mc"))
   with
  | Hypar_server.Protocol.Failed { kind = "io:Unix_error"; message; _ } ->
    Alcotest.(check string) "unix message"
      "open gone.mc: No such file or directory (request without id)" message
  | resp ->
    Alcotest.failf "unexpected envelope %s" (Hypar_server.Protocol.render resp));
  match
    Hypar_server.Worker.envelope_of_exn None
      (Unix.Unix_error (Unix.EPIPE, "write", ""))
  with
  | Hypar_server.Protocol.Failed { kind = "io:Unix_error"; message; _ } ->
    Alcotest.(check string) "no-arg unix message"
      "write: Broken pipe (request without id)" message
  | resp ->
    Alcotest.failf "unexpected envelope %s" (Hypar_server.Protocol.render resp)

let suite =
  [
    Alcotest.test_case "lexer total" `Quick test_lexer_total;
    Alcotest.test_case "parser total" `Quick test_parser_total;
    Alcotest.test_case "driver total" `Quick test_driver_total;
    Alcotest.test_case "mutated programs" `Quick test_mutated_valid_programs;
    Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
    QCheck_alcotest.to_alcotest prop_faults_never_raise;
    QCheck_alcotest.to_alcotest prop_optimize_differential;
    QCheck_alcotest.to_alcotest prop_bytecode_differential;
    QCheck_alcotest.to_alcotest prop_backend_differential;
    QCheck_alcotest.to_alcotest prop_oracle_matrix;
    Alcotest.test_case "serve protocol: byte soup" `Quick
      test_protocol_byte_soup;
    Alcotest.test_case "serve protocol: truncations" `Quick
      test_protocol_truncations;
    Alcotest.test_case "worker: crash ranking" `Quick test_worker_crash_rank;
    Alcotest.test_case "worker: io ranking" `Quick test_worker_io_rank_messages;
  ]
