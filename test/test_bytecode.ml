(* Unit tests for the bytecode frontend: the .hbc parser, CFG recovery
   (leaders, back edges, unreachable code, typed rejections), the
   stack-to-register lowering and the Mini-C -> bytecode emitter. *)

module Ir = Hypar_ir
module B = Hypar_bytecode
module Interp = Hypar_profiling.Interp

let compile ?(optimize = false) src =
  match B.Driver.compile ~name:"t.hbc" ~optimize ~verify_ir:true src with
  | Ok cdfg -> cdfg
  | Error e -> Alcotest.failf "unexpected reject: %s" (B.Driver.string_of_error e)

let error src =
  match B.Driver.compile ~name:"t.hbc" src with
  | Ok _ -> Alcotest.fail "expected a frontend error"
  | Error e -> e

let returns src = (Interp.run (compile src)).Interp.return_value

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_returns what src expected =
  Alcotest.(check (option int)) what (Some expected) (returns src)

(* --- parser -------------------------------------------------------------- *)

let roundtrip_src =
  {|.array buf 8 16
.const rom 4 8 = 7 8 9 10
.local i 8
.local acc 32
entry:
  push 0
  store i       ; comment after an instruction
loop:
  load i
  aload rom
  load acc
  add
  store acc
# a full-line comment
  load i
  push 1
  add
  dup
  store i
  push 4
  lt
  brt loop
  load acc
  push 0
  push 1
  select
  pop
  swap
  astore buf
  load acc
  neg
  abs
  retv
|}

let test_parser_roundtrip () =
  match B.Parse.program ~name:"rt" roundtrip_src with
  | Error e -> Alcotest.failf "parse failed: %s" (B.Parse.string_of_error e)
  | Ok prog -> (
    let printed = B.Prog.to_string prog in
    match B.Parse.program ~name:"rt" printed with
    | Error e -> Alcotest.failf "reparse failed: %s" (B.Parse.string_of_error e)
    | Ok again ->
      Alcotest.(check bool) "print/parse round-trip" true (B.Prog.equal prog again))

let test_parser_positions () =
  let e = error "  push 1\n  bogus 3\n  ret\n" in
  Alcotest.(check int) "line" 2 e.B.Driver.line;
  Alcotest.(check int) "col" 3 e.B.Driver.col;
  Alcotest.(check bool) "mentions mnemonic" true
    (contains ~needle:"bogus" e.B.Driver.msg)

let test_parser_rejects () =
  let cases =
    [
      ("duplicate decl", ".local x 8\n.local x 8\n  ret\n", "duplicate");
      ("bad directive", ".globl x\n  ret\n", "unknown directive");
      ("trailing token", "  push 1 2\n  ret\n", "trailing");
      ("bad width", ".local x 99\n  ret\n", "width");
      ("too many inits", ".array a 2 8 = 1 2 3\n  ret\n", "initialisers");
      ("label not alone", "x: push 1\n  ret\n", "alone");
    ]
  in
  List.iter
    (fun (what, src, needle) ->
      let e = error src in
      Alcotest.(check bool)
        (what ^ ": " ^ e.B.Driver.msg)
        true
        (contains ~needle e.B.Driver.msg))
    cases

(* --- straight-line semantics --------------------------------------------- *)

let test_arith () =
  check_returns "add/mul" "  push 2\n  push 3\n  add\n  push 4\n  mul\n  retv\n" 20;
  check_returns "dup" "  push 6\n  dup\n  mul\n  retv\n" 36;
  check_returns "swap/sub" "  push 3\n  push 10\n  swap\n  sub\n  retv\n" 7;
  check_returns "pop" "  push 1\n  push 2\n  pop\n  retv\n" 1;
  check_returns "select false" "  push 0\n  push 11\n  push 22\n  select\n  retv\n" 22;
  check_returns "select true" "  push 9\n  push 11\n  push 22\n  select\n  retv\n" 11;
  check_returns "neg" "  push 5\n  neg\n  retv\n" (-5);
  check_returns "div" "  push 17\n  push 5\n  div\n  retv\n" 3

let test_locals_and_arrays () =
  check_returns "locals are zero at entry" ".local x 16\n  load x\n  retv\n" 0;
  check_returns "store/load"
    ".local x 16\n  push 41\n  store x\n  load x\n  push 1\n  add\n  retv\n" 42;
  check_returns "rom"
    ".const rom 4 8 = 7 8 9 10\n  push 2\n  aload rom\n  retv\n" 9;
  check_returns "array write then read"
    ".array a 4 16\n  push 1\n  push 33\n  astore a\n  push 1\n  aload a\n  retv\n"
    33

(* --- control flow recovery ----------------------------------------------- *)

let loop_src =
  ".local i 8\n\
   \  push 0\n\
   \  store i\n\
   loop:\n\
   \  load i\n\
   \  push 1\n\
   \  add\n\
   \  store i\n\
   \  load i\n\
   \  push 10\n\
   \  lt\n\
   \  brt loop\n\
   \  load i\n\
   \  retv\n"

let test_back_edge_loop () =
  let cdfg = compile loop_src in
  let depth_of label =
    let found = ref None in
    Array.iter
      (fun (info : Ir.Cdfg.block_info) ->
        if info.block.Ir.Block.label = label then found := Some info.loop_depth)
      (Ir.Cdfg.infos cdfg);
    match !found with
    | Some d -> d
    | None -> Alcotest.failf "no block labelled %s" label
  in
  Alcotest.(check int) "loop body depth" 1 (depth_of "loop");
  Alcotest.(check (option int)) "counts to 10" (Some 10) (returns loop_src);
  let back = Ir.Cfg.back_edges (Ir.Cdfg.cfg cdfg) in
  Alcotest.(check int) "one back edge" 1 (List.length back)

let test_spill_across_blocks () =
  (* values live on the operand stack across block boundaries go through
     the canonical stk_<i> registers *)
  check_returns "stack value crosses a jump"
    "  push 3\n  push 5\n  jmp next\nnext:\n  swap\n  sub\n  retv\n" 2;
  (* the loop swaps the pair every iteration: the block-exit spill is a
     genuine parallel move (stk_0 and stk_1 exchange) *)
  check_returns "swapped pair across a back edge"
    ".local i 8\n\
     \  push 3\n\
     \  store i\n\
     \  push 100\n\
     \  push 1\n\
     loop:\n\
     \  swap\n\
     \  load i\n\
     \  push 1\n\
     \  sub\n\
     \  store i\n\
     \  load i\n\
     \  brt loop\n\
     \  pop\n\
     \  retv\n"
    1

let test_entry_back_edge () =
  (* a branch back to instruction 0: the local zero-init must not sit in
     the loop body, or the counter is re-zeroed every iteration and the
     loop never terminates *)
  let src =
    ".local i 8\n\
     top:\n\
     \  load i\n\
     \  push 1\n\
     \  add\n\
     \  store i\n\
     \  load i\n\
     \  push 10\n\
     \  lt\n\
     \  brt top\n\
     \  load i\n\
     \  retv\n"
  in
  let cdfg = compile src in
  (* the init lives in a synthetic entry block that jumps to "top" *)
  let entry =
    (Ir.Cfg.blocks (Ir.Cdfg.cfg cdfg)).(Ir.Cfg.entry (Ir.Cdfg.cfg cdfg))
  in
  Alcotest.(check bool)
    "synthetic entry is not the branch target" true
    (entry.Ir.Block.label <> "top");
  (match entry.Ir.Block.term with
  | Ir.Block.Jump "top" -> ()
  | _ -> Alcotest.fail "entry block should jump to \"top\"");
  Alcotest.(check (option int)) "counts to 10" (Some 10) (returns src);
  Alcotest.(check (option int))
    "counts to 10 optimised" (Some 10)
    (Interp.run (compile ~optimize:true src)).Interp.return_value

let test_stk_register_widths () =
  (* a 64-bit value live on the stack across a block edge must not be
     narrowed by the stk_<j> register that carries it *)
  let src = ".local x 64\n  load x\n  jmp next\nnext:\n  retv\n" in
  let cdfg = compile src in
  let width = ref 0 in
  Array.iter
    (fun (info : Ir.Cdfg.block_info) ->
      List.iter
        (fun instr ->
          List.iter
            (fun (v : Ir.Instr.var) ->
              if v.vname = "stk_0" && v.vwidth > !width then width := v.vwidth)
            (Option.to_list (Ir.Instr.def instr) @ Ir.Instr.used_vars instr))
        info.block.Ir.Block.instrs)
    (Ir.Cdfg.infos cdfg);
  Alcotest.(check int) "stk_0 carries the full 64 bits" 64 !width

let test_unreachable_code () =
  let src = "  push 1\n  retv\ndead:\n  push 2\n  retv\n" in
  let raw = compile src in
  Alcotest.(check int) "dead block kept raw" 2 (Ir.Cdfg.block_count raw);
  let opt = compile ~optimize:true src in
  Alcotest.(check int) "dead block optimised away" 1 (Ir.Cdfg.block_count opt);
  Alcotest.(check (option int)) "still returns 1" (Some 1)
    (Interp.run opt).Interp.return_value

let test_unreachable_underflow () =
  (* dead code is lowered under an assumed empty stack; a pop there must
     be padded, not rejected — the program is valid, the pop never runs *)
  let src = "  push 1\n  retv\ndead:\n  pop\n  push 2\n  retv\n" in
  let raw = compile src in
  Alcotest.(check int) "dead block kept raw" 2 (Ir.Cdfg.block_count raw);
  Alcotest.(check (option int)) "still returns 1" (Some 1) (returns src);
  let opt = compile ~optimize:true src in
  Alcotest.(check int) "dead block optimised away" 1 (Ir.Cdfg.block_count opt)

let check_reject what src line needle =
  let e = error src in
  Alcotest.(check int) (what ^ ": line") line e.B.Driver.line;
  Alcotest.(check bool)
    (what ^ ": message " ^ e.B.Driver.msg)
    true
    (contains ~needle e.B.Driver.msg)

let test_recovery_rejects () =
  check_reject "bad jump target" "  push 1\n  brt nowhere\n  ret\n" 2 "nowhere";
  check_reject "duplicate label" "a:\n  push 1\n  pop\na:\n  ret\n" 4 "duplicate";
  check_reject "label past end" "  ret\nend:\n" 2 "past the last";
  check_reject "fallthrough off end" "  push 1\n  pop\n" 2 "falls through";
  check_reject "fallthrough off end via brt" "start:\n  push 1\n  brt start\n" 3
    "falls through";
  check_reject "empty program" "; only a comment\n" 1 "empty";
  check_reject "stack underflow" "  push 1\n  add\n  ret\n" 2 "underflow";
  check_reject "retv underflow" "  retv\n" 1 "underflow";
  check_reject "unknown local" "  push 1\n  store x\n  ret\n" 2 "undeclared local";
  check_reject "unknown array" "  push 0\n  aload a\n  ret\n" 2 "undeclared array";
  check_reject "const store"
    ".const rom 2 8 = 1 2\n  push 0\n  push 1\n  astore rom\n  ret\n" 4 "const"

let test_stack_mismatch_at_join () =
  let src =
    "  push 1\n\
     \  brt a\n\
     \  push 2\n\
     \  jmp join\n\
     a:\n\
     \  jmp join\n\
     join:\n\
     \  ret\n"
  in
  let e = error src in
  Alcotest.(check bool)
    ("mismatch: " ^ e.B.Driver.msg)
    true
    (contains ~needle:"mismatch" e.B.Driver.msg);
  Alcotest.(check bool)
    "names the join label" true
    (contains ~needle:"join" e.B.Driver.msg)

let test_stack_overflow () =
  let pushes = List.init (B.Recover.stack_limit + 1) (fun _ -> "  push 1") in
  let src = String.concat "\n" (pushes @ [ "  ret"; "" ]) in
  let e = error src in
  Alcotest.(check bool)
    ("overflow: " ^ e.B.Driver.msg)
    true
    (contains ~needle:"exceeds" e.B.Driver.msg)

(* --- the Mini-C -> bytecode emitter -------------------------------------- *)

let minic_src =
  {|
int out[2];
const int coef[4] = { 3, -1, 4, 1 };
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 4; i++) {
    s += coef[i] * i;
  }
  out[0] = s;
  out[1] = s > 0 ? s : 0 - s;
  return s;
}
|}

let test_emit_roundtrip () =
  let direct = Hypar_minic.Driver.compile_exn ~name:"emit" ~simplify:false minic_src in
  let hbc = B.Emit.to_string direct in
  (* the emitted text parses back to the exact same program *)
  (match B.Parse.program ~name:"emit" hbc with
  | Error e -> Alcotest.failf "emitted text unparseable: %s" (B.Parse.string_of_error e)
  | Ok prog ->
    Alcotest.(check bool) "emit/parse round-trip" true
      (B.Prog.equal prog (B.Emit.program direct)));
  let recovered = B.Driver.compile_exn ~name:"emit" ~verify_ir:true hbc in
  let r_direct = Interp.run direct and r_bc = Interp.run recovered in
  Alcotest.(check (option int))
    "same return value" r_direct.Interp.return_value r_bc.Interp.return_value;
  List.iter
    (fun (arr, contents) ->
      Alcotest.(check (array int))
        ("array " ^ arr) contents
        (Interp.array_exn r_bc arr))
    r_direct.Interp.arrays

let test_emit_optimized_parity () =
  (* after -O the decompiled CDFG shrinks back to the direct frontend's
     size (the acceptance gate the bench section enforces across apps) *)
  let direct =
    Hypar_minic.Driver.compile_exn ~name:"parity" ~simplify:true minic_src
  in
  let raw = Hypar_minic.Driver.compile_exn ~name:"parity" ~simplify:false minic_src in
  let recovered =
    B.Driver.compile_exn ~name:"parity" ~optimize:true ~verify_ir:true
      (B.Emit.to_string raw)
  in
  let direct_n = Ir.Cdfg.total_instrs direct in
  let bc_n = Ir.Cdfg.total_instrs recovered in
  Alcotest.(check bool)
    (Printf.sprintf "within 10%% (direct %d, decompiled %d)" direct_n bc_n)
    true
    (10 * abs (bc_n - direct_n) <= direct_n)

let test_driver_exn () =
  match B.Driver.compile_exn ~name:"bad.hbc" "  nonsense\n" with
  | exception B.Driver.Frontend_error { name; err } ->
    Alcotest.(check (option string)) "carries name" (Some "bad.hbc") name;
    Alcotest.(check int) "line" 1 err.B.Driver.line
  | _ -> Alcotest.fail "expected Frontend_error"

let suite =
  [
    Alcotest.test_case "parser round-trip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser positions" `Quick test_parser_positions;
    Alcotest.test_case "parser rejects" `Quick test_parser_rejects;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "locals and arrays" `Quick test_locals_and_arrays;
    Alcotest.test_case "back-edge loop" `Quick test_back_edge_loop;
    Alcotest.test_case "back edge to instruction 0" `Quick test_entry_back_edge;
    Alcotest.test_case "stk register widths" `Quick test_stk_register_widths;
    Alcotest.test_case "stack spills across blocks" `Quick test_spill_across_blocks;
    Alcotest.test_case "unreachable code" `Quick test_unreachable_code;
    Alcotest.test_case "unreachable stack underflow" `Quick test_unreachable_underflow;
    Alcotest.test_case "recovery rejects" `Quick test_recovery_rejects;
    Alcotest.test_case "stack mismatch at join" `Quick test_stack_mismatch_at_join;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
    Alcotest.test_case "emit round-trip" `Quick test_emit_roundtrip;
    Alcotest.test_case "emit optimised parity" `Quick test_emit_optimized_parity;
    Alcotest.test_case "driver exception" `Quick test_driver_exn;
  ]
