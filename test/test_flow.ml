(* Unit tests for the one-call driver (Flow) and its error paths. *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform

let platform () = List.hd (Platform.paper_configs ())

let test_prepare_runs_everything () =
  let p =
    Flow.prepare ~name:"tiny" ~inputs:[ ("in", [| 21 |]) ]
      {|
int in[1];
int out[1];
void main() { out[0] = in[0] * 2; }
|}
  in
  Alcotest.(check string) "name" "tiny" (Hypar_ir.Cdfg.name p.Flow.cdfg);
  Alcotest.(check int) "interpreted" 42
    (Hypar_profiling.Interp.array_exn p.Flow.interp "out").(0);
  Alcotest.(check bool) "profile collected" true
    (p.Flow.profile.Hypar_profiling.Profile.total_instrs_executed > 0)

let test_partition_source_shortcut () =
  let r =
    Flow.partition_source ~name:"loop" (platform ()) ~timing_constraint:max_int
      {|
int out[1];
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i++) { s += i; }
  out[0] = s;
}
|}
  in
  Alcotest.(check bool) "met trivially" true (Engine.met r);
  Alcotest.(check string) "cdfg name" "loop" r.Engine.cdfg_name

let test_frontend_error_raises () =
  match Flow.prepare ~name:"bad" "void main() { x = ; }" with
  | exception Hypar_minic.Driver.Frontend_error { name; err } ->
    Alcotest.(check (option string)) "carries the compilation name"
      (Some "bad") name;
    Alcotest.(check bool) "error is located" true
      (err.Hypar_minic.Driver.line >= 1)
  | _ -> Alcotest.fail "expected frontend failure"

let test_runtime_error_propagates () =
  match
    Flow.prepare ~name:"oob" {|
int t[2];
void main() { t[5] = 1; }
|}
  with
  | exception Hypar_profiling.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime error during profiling"

let test_unsimplified_flow () =
  let p =
    Flow.prepare ~name:"raw" ~simplify:false
      {|
int out[1];
void main() { out[0] = 1 + 2; }
|}
  in
  (* without simplification the addition is still in the program *)
  let has_add =
    Array.exists
      (fun (bi : Hypar_ir.Cdfg.block_info) ->
        List.exists
          (fun i -> Hypar_ir.Instr.mnemonic i = "add")
          bi.block.Hypar_ir.Block.instrs)
      (Hypar_ir.Cdfg.infos p.Flow.cdfg)
  in
  Alcotest.(check bool) "raw program keeps the add" true has_add

let suite =
  [
    Alcotest.test_case "prepare" `Quick test_prepare_runs_everything;
    Alcotest.test_case "partition_source" `Quick test_partition_source_shortcut;
    Alcotest.test_case "frontend errors" `Quick test_frontend_error_raises;
    Alcotest.test_case "runtime errors" `Quick test_runtime_error_propagates;
    Alcotest.test_case "unsimplified flow" `Quick test_unsimplified_flow;
  ]
