(* Unit tests for the IR invariant verifier. *)

module Ir = Hypar_ir
module Verify = Hypar_ir.Verify
module Block = Hypar_ir.Block
module Instr = Hypar_ir.Instr
module Cfg = Hypar_ir.Cfg
module Cdfg = Hypar_ir.Cdfg
module Dfg = Hypar_ir.Dfg
module Live = Hypar_ir.Live

let compile = Hypar_minic.Driver.compile_exn ~simplify:false ~verify_ir:false

let fir_src =
  {|
int x[16];
int h[16];
int y[16];
void main() {
  int n;
  for (n = 0; n < 16; n = n + 1) {
    int s = 0;
    int k;
    for (k = 0; k <= n; k = k + 1) {
      s = s + h[k] * x[n - k];
    }
    y[n] = s;
  }
}
|}

let invariants vs =
  List.sort_uniq compare
    (List.map (fun (v : Verify.violation) -> v.Verify.invariant) vs)

let has inv vs = List.mem inv (invariants vs)

let check_has inv msg vs =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s reported" msg (Verify.invariant_name inv))
    true (has inv vs)

let var ?(w = 16) vname vid = { Instr.vname; vid; vwidth = w }

(* --- positives: real programs pass every invariant ----------------------- *)

let test_compiled_program_clean () =
  let cdfg = compile fir_src in
  Alcotest.(check (list string)) "unoptimised IR verifies" []
    (List.map (Format.asprintf "%a" Verify.pp_violation) (Verify.check cdfg));
  let optimised = Ir.Passes.optimize ~verify:true cdfg in
  Alcotest.(check int) "optimised IR verifies" 0
    (List.length (Verify.check optimised))

let test_check_exn_silent_on_clean () =
  Verify.check_exn ~context:"test" (compile fir_src)

(* --- entry-reachable ------------------------------------------------------ *)

let test_no_blocks_flagged () =
  check_has Verify.Entry_reachable "empty program" (Verify.check_blocks [])

(* --- terminators-resolve -------------------------------------------------- *)

let ret = Block.Return None

let test_duplicate_labels_flagged () =
  let b = Block.make ~label:"bb0" ~instrs:[] ~term:ret in
  check_has Verify.Terminators_resolve "duplicate label"
    (Verify.check_blocks [ b; b ])

let test_unknown_target_flagged () =
  let b = Block.make ~label:"bb0" ~instrs:[] ~term:(Block.Jump "nowhere") in
  check_has Verify.Terminators_resolve "dangling jump"
    (Verify.check_blocks [ b ])

let test_resolving_blocks_clean () =
  let b0 = Block.make ~label:"bb0" ~instrs:[] ~term:(Block.Jump "bb1") in
  let b1 = Block.make ~label:"bb1" ~instrs:[] ~term:ret in
  Alcotest.(check int) "well-linked blocks" 0
    (List.length (Verify.check_blocks [ b0; b1 ]))

(* --- dfg-well-formed ------------------------------------------------------ *)

let mov dst src = Instr.Mov { dst; src }

let two_instrs =
  let a = var "a" 0 and b = var "b" 1 in
  [ mov a (Instr.Imm 1); mov b (Instr.Var a) ]

let test_dfg_node_count_mismatch () =
  let block = Block.make ~label:"bb0" ~instrs:two_instrs ~term:ret in
  let stale = Dfg.of_instrs [ List.hd two_instrs ] in
  check_has Verify.Dfg_well_formed "stale DFG"
    (Verify.check_dfg_against block stale)

let test_dfg_instr_mismatch () =
  let block = Block.make ~label:"bb0" ~instrs:two_instrs ~term:ret in
  let other =
    Dfg.of_instrs [ mov (var "a" 0) (Instr.Imm 9); mov (var "b" 1) (Instr.Imm 9) ]
  in
  check_has Verify.Dfg_well_formed "DFG of other instructions"
    (Verify.check_dfg_against block other)

let test_dfg_matching_clean () =
  let block = Block.make ~label:"bb0" ~instrs:two_instrs ~term:ret in
  Alcotest.(check int) "fresh DFG" 0
    (List.length (Verify.check_dfg_against block (Dfg.of_instrs two_instrs)))

(* --- defs-before-uses ----------------------------------------------------- *)

let use_before_def_cdfg () =
  (* reads "ghost" which no instruction ever defines *)
  let x = var "x" 0 and ghost = var "ghost" 7 in
  let b =
    Block.make ~label:"bb0" ~instrs:[ mov x (Instr.Var ghost) ] ~term:ret
  in
  Cdfg.make ~name:"broken" ~arrays:[] (Cfg.of_blocks [ b ])

let test_use_before_def_flagged () =
  let vs = Verify.check (use_before_def_cdfg ()) in
  check_has Verify.Defs_before_uses "ghost read" vs;
  Alcotest.(check bool) "violation names the register" true
    (List.exists
       (fun (v : Verify.violation) ->
         v.Verify.invariant = Verify.Defs_before_uses
         && String.length v.Verify.detail > 0)
       vs)

let test_check_exn_raises_with_context () =
  match Verify.check_exn ~context:"unit-test" (use_before_def_cdfg ()) with
  | () -> Alcotest.fail "expected Verify.Failed"
  | exception Verify.Failed { context; violations } ->
    Alcotest.(check string) "context" "unit-test" context;
    Alcotest.(check bool) "non-empty" true (violations <> [])

(* --- liveness-consistent -------------------------------------------------- *)

let test_bogus_liveness_flagged () =
  let cdfg = compile fir_src in
  let cfg = Cdfg.cfg cdfg in
  (* claim nothing is ever live: the data-flow equations cannot hold *)
  check_has Verify.Liveness_consistent "empty live sets"
    (Verify.check_liveness cfg
       ~live_in:(fun _ -> [])
       ~live_out:(fun _ -> []))

let test_real_liveness_clean () =
  let cfg = Cdfg.cfg (compile fir_src) in
  let live = Live.analyse cfg in
  Alcotest.(check int) "Live.analyse satisfies its own equations" 0
    (List.length
       (Verify.check_liveness cfg ~live_in:(Live.live_in live)
          ~live_out:(Live.live_out live)))

(* --- arrays-declared ------------------------------------------------------ *)

let test_undeclared_array_flagged () =
  let t = var "t" 0 in
  let b =
    Block.make ~label:"bb0"
      ~instrs:[ Instr.Load { dst = t; arr = "phantom"; index = Instr.Imm 0 } ]
      ~term:ret
  in
  check_has Verify.Arrays_declared "undeclared array"
    (Verify.check (Cdfg.make ~arrays:[] (Cfg.of_blocks [ b ])))

let test_const_store_flagged () =
  let rom =
    {
      Cdfg.aname = "rom";
      size = 4;
      init = Some [| 1; 2; 3; 4 |];
      is_const = true;
      elem_width = 16;
    }
  in
  let b =
    Block.make ~label:"bb0"
      ~instrs:
        [ Instr.Store { arr = "rom"; index = Instr.Imm 0; value = Instr.Imm 5 } ]
      ~term:ret
  in
  check_has Verify.Arrays_declared "store to const array"
    (Verify.check (Cdfg.make ~arrays:[ rom ] (Cfg.of_blocks [ b ])))

(* --- roundtrip-stable ----------------------------------------------------- *)

let test_roundtrip_diff_flagged () =
  let a = compile fir_src in
  let b = compile ~name:"other" fir_src in
  check_has Verify.Roundtrip_stable "renamed program"
    (Verify.structural_diff a b)

let test_roundtrip_self_clean () =
  let a = compile fir_src in
  Alcotest.(check int) "no self-diff" 0
    (List.length (Verify.structural_diff a a))

(* --- report / fixture ----------------------------------------------------- *)

let test_report_names_invariant () =
  let vs = Verify.check (use_before_def_cdfg ()) in
  let text = Verify.report vs in
  Alcotest.(check bool) "report mentions defs-before-uses" true
    (let needle = "defs-before-uses" in
     let rec find i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_broken_fixture_serialises_and_fails () =
  (* the corrupted CDFG survives a serialise/load cycle and still fails
     verification: exactly what the cli.t broken.ir fixture relies on *)
  let broken = use_before_def_cdfg () in
  let reloaded =
    Ir.Serialize.of_string (Ir.Serialize.to_string broken)
  in
  check_has Verify.Defs_before_uses "reloaded fixture" (Verify.check reloaded)

let test_all_invariants_named () =
  let names = List.map Verify.invariant_name Verify.all_invariants in
  Alcotest.(check int) "seven invariants" 7 (List.length names);
  Alcotest.(check int) "names distinct" 7
    (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "compiled programs verify" `Quick test_compiled_program_clean;
    Alcotest.test_case "check_exn silent when clean" `Quick test_check_exn_silent_on_clean;
    Alcotest.test_case "no blocks" `Quick test_no_blocks_flagged;
    Alcotest.test_case "duplicate labels" `Quick test_duplicate_labels_flagged;
    Alcotest.test_case "unknown jump target" `Quick test_unknown_target_flagged;
    Alcotest.test_case "well-linked blocks clean" `Quick test_resolving_blocks_clean;
    Alcotest.test_case "stale DFG" `Quick test_dfg_node_count_mismatch;
    Alcotest.test_case "mismatched DFG" `Quick test_dfg_instr_mismatch;
    Alcotest.test_case "fresh DFG clean" `Quick test_dfg_matching_clean;
    Alcotest.test_case "use before def" `Quick test_use_before_def_flagged;
    Alcotest.test_case "check_exn carries context" `Quick test_check_exn_raises_with_context;
    Alcotest.test_case "bogus liveness" `Quick test_bogus_liveness_flagged;
    Alcotest.test_case "real liveness clean" `Quick test_real_liveness_clean;
    Alcotest.test_case "undeclared array" `Quick test_undeclared_array_flagged;
    Alcotest.test_case "const store" `Quick test_const_store_flagged;
    Alcotest.test_case "roundtrip diff" `Quick test_roundtrip_diff_flagged;
    Alcotest.test_case "roundtrip self clean" `Quick test_roundtrip_self_clean;
    Alcotest.test_case "report names invariants" `Quick test_report_names_invariant;
    Alcotest.test_case "broken fixture round-trips" `Quick test_broken_fixture_serialises_and_fails;
    Alcotest.test_case "invariant names" `Quick test_all_invariants_named;
  ]
