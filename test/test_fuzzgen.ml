(* The fuzzing subsystem itself: determinism of the RNG and the
   campaign runner, the generator's re-parse guarantee, the shrinker's
   contract, and the corpus round-trip.  These are the properties the
   cram test and CI rely on — if they drift, `hypar fuzz` reports stop
   being reproducible. *)

module Rng = Hypar_fuzzgen.Rng
module Gen = Hypar_fuzzgen.Gen
module Pp = Hypar_fuzzgen.Pp
module Oracle = Hypar_fuzzgen.Oracle
module Shrink = Hypar_fuzzgen.Shrink
module Corpus = Hypar_fuzzgen.Corpus
module Runner = Hypar_fuzzgen.Runner

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000)
      (Rng.int b 1_000_000)
  done;
  (* derive is pure: independent of call order and of any rng state *)
  let d1 = Rng.derive ~seed:9 4 in
  let _ = Rng.derive ~seed:9 0 in
  Alcotest.(check bool) "derive pure" true (d1 = Rng.derive ~seed:9 4);
  Alcotest.(check bool) "derive varies by index" true
    (Rng.derive ~seed:9 4 <> Rng.derive ~seed:9 5);
  Alcotest.(check bool) "derive varies by seed" true
    (Rng.derive ~seed:9 4 <> Rng.derive ~seed:10 4)

let test_generator_roundtrip () =
  (* every generated program pretty-prints to source that re-parses to
     the same AST (modulo positions) — the re-parse guarantee that makes
     shrinking and corpus replay trustworthy *)
  for seed = 1 to 150 do
    let ast = Gen.program seed in
    let src = Pp.program ast in
    match Hypar_minic.Parser.parse_program src with
    | reparsed ->
      if not (Pp.equal_program ast reparsed) then
        Alcotest.failf "seed %d: reparse changed the AST\n%s" seed src
    | exception e ->
      Alcotest.failf "seed %d: printed program does not parse (%s)\n%s" seed
        (Printexc.to_string e) src
  done

let test_generator_oracle_clean () =
  (* safe-mode programs pass the whole differential matrix *)
  for seed = 300 to 360 do
    match Oracle.run (Gen.source seed) with
    | Oracle.Pass -> ()
    | v -> Alcotest.failf "seed %d: %s" seed (Oracle.verdict_to_string v)
  done

let test_unsafe_oracle_no_divergence () =
  (* unsafe-mode programs may hit runtime errors (that is their point),
     but with expect_clean:false those are not findings — the backends
     must still agree on every error *)
  let config = { Gen.default_config with Gen.unsafe = true } in
  for seed = 500 to 540 do
    match Oracle.run ~expect_clean:false (Gen.source ~config seed) with
    | Oracle.Pass -> ()
    | v -> Alcotest.failf "unsafe seed %d: %s" seed (Oracle.verdict_to_string v)
  done

let test_shrink_minimizes () =
  (* against a trivial predicate (program mentions the first global
     array's name in a store), shrinking must terminate and produce
     something much smaller that still satisfies the predicate and
     still compiles *)
  let ast = Gen.program 12345 in
  let keep ast' =
    let src = Pp.program ast' in
    match Hypar_minic.Driver.compile ~name:"shrink" src with
    | Ok _ ->
      (try
         ignore (Str.search_forward (Str.regexp_string "g0[") src 0);
         true
       with Not_found -> false)
    | Error _ -> false
  in
  Alcotest.(check bool) "seed satisfies predicate" true (keep ast);
  let reduced = Shrink.minimize ~keep ast in
  Alcotest.(check bool) "reduced satisfies predicate" true (keep reduced);
  let size p = String.length (Pp.program p) in
  Alcotest.(check bool)
    (Printf.sprintf "reduced (%d bytes) smaller than original (%d bytes)"
       (size reduced) (size ast))
    true
    (size reduced <= size ast);
  (* a fixpoint: no one-step candidate still satisfies the predicate *)
  Alcotest.(check bool) "reduction is 1-minimal" true
    (List.for_all (fun c -> not (keep c)) (Shrink.candidates reduced))

let test_corpus_roundtrip () =
  let entry =
    {
      Corpus.name = "sample";
      seed = Some 77;
      signature = "backend/-O:result";
      note = Some "synthetic round-trip fixture";
      source = "int g0[4];\nvoid main() {\n  g0[0] = 1;\n}\n";
    }
  in
  let text = Corpus.to_string entry in
  (match Corpus.parse ~name:"sample" text with
  | Ok e -> Alcotest.(check bool) "parse inverts to_string" true (e = entry)
  | Error e -> Alcotest.failf "corpus parse failed: %s" e);
  (* header comments are transparent to the frontend: the serialized
     entry is itself a compilable Mini-C program *)
  (match Hypar_minic.Driver.compile ~name:"corpus" text with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "serialized entry does not compile: %s"
      (Hypar_minic.Driver.string_of_error e));
  (* save/load through a temp dir *)
  let dir = Filename.temp_file "hypar-corpus" "" in
  Sys.remove dir;
  let path = Corpus.save ~dir entry in
  (match Corpus.load_dir dir with
  | Ok [ e ] -> Alcotest.(check bool) "load_dir round-trip" true (e = entry)
  | Ok es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
  | Error e -> Alcotest.failf "load_dir failed: %s" e);
  Sys.remove path;
  Unix.rmdir dir

(* resolve the corpus directory from either cwd: the test directory
   (dune runtest) or the repo root (direct execution) *)
let corpus_dir () =
  List.find_opt Sys.file_exists [ "corpus"; "test/corpus" ]
  |> Option.value ~default:"corpus"

let test_corpus_replay_green () =
  (* the checked-in corpus replays clean — same gate as `hypar fuzz
     --replay test/corpus` in CI, but inside the tier-1 suite *)
  match Corpus.load_dir (corpus_dir ()) with
  | Error e -> Alcotest.failf "test/corpus unreadable: %s" e
  | Ok [] -> Alcotest.fail "test/corpus is empty"
  | Ok entries ->
    List.iter
      (fun e ->
        match Corpus.replay e with
        | Oracle.Pass -> ()
        | v ->
          Alcotest.failf "corpus %s: %s" e.Corpus.name
            (Oracle.verdict_to_string v))
      entries

let test_runner_jobs_independent () =
  let base = { Runner.default with Runner.seed = 11; count = 40 } in
  let r1 = Runner.run base in
  let r2 = Runner.run { base with Runner.jobs = 2 } in
  Alcotest.(check string) "text reports identical" (Runner.to_text r1)
    (Runner.to_text r2);
  Alcotest.(check string) "json reports identical" (Runner.to_json r1)
    (Runner.to_json r2);
  Alcotest.(check int) "all executed" 40 r1.Runner.executed

let test_runner_finds_and_shrinks () =
  (* an injected failure: programs storing through g0 are flagged, and
     the shrinker must reduce each to a still-compiling reproducer that
     keeps the signature *)
  let config =
    {
      Runner.default with
      Runner.seed = 3;
      count = 30;
      fail_on = Some "g0[(";
    }
  in
  let r = Runner.run config in
  Alcotest.(check bool) "found injected failures" true
    (r.Runner.failures <> []);
  List.iter
    (fun f ->
      Alcotest.(check string) "signature preserved" "injected"
        f.Runner.finding.Oracle.signature;
      Alcotest.(check bool) "reduced no larger" true
        (String.length f.Runner.reduced <= String.length f.Runner.source);
      match Hypar_minic.Driver.compile ~name:"red" f.Runner.reduced with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "reduced reproducer does not compile: %s\n%s"
          (Hypar_minic.Driver.string_of_error e)
          f.Runner.reduced)
    r.Runner.failures

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "generator reparse round-trip" `Quick
      test_generator_roundtrip;
    Alcotest.test_case "generator passes oracle" `Quick
      test_generator_oracle_clean;
    Alcotest.test_case "unsafe grammar never diverges" `Quick
      test_unsafe_oracle_no_divergence;
    Alcotest.test_case "shrinker minimizes" `Quick test_shrink_minimizes;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus replays green" `Quick test_corpus_replay_green;
    Alcotest.test_case "runner jobs-independent" `Quick
      test_runner_jobs_independent;
    Alcotest.test_case "runner shrinks injected failures" `Quick
      test_runner_finds_and_shrinks;
  ]
