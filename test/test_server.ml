(* hypar serve internals: wire protocol, admission queue, deadlines,
   request isolation and session behaviour (drain, jobs-independence,
   backpressure). *)

module Protocol = Hypar_server.Protocol
module Bqueue = Hypar_server.Bqueue
module Deadline = Hypar_server.Deadline
module Drain = Hypar_server.Drain
module Worker = Hypar_server.Worker
module Server = Hypar_server.Server
module Jsonv = Hypar_obs.Jsonv

let fir_source =
  {|
int x[64];
int h[8];
int y[64];
void main() {
  int i;
  for (i = 0; i < 56; i = i + 1) {
    int s = 0;
    int t;
    for (t = 0; t < 8; t = t + 1) {
      s = s + x[i + t] * h[t];
    }
    y[i] = s >> 6;
  }
}
|}

let write_temp ~suffix contents =
  let path = Filename.temp_file "hypar_serve_test" suffix in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let fir_file = lazy (write_temp ~suffix:".mc" fir_source)

let fresh_config ?faults ?default_deadline_ms ?default_fuel () =
  {
    Worker.faults;
    backend = None;
    default_deadline_ms;
    default_fuel;
    drain = Drain.create ~drain_timeout_ms:1000;
    queue_depth = (fun () -> 0);
    on_poll = None;
  }

let request_exn line =
  match Protocol.parse_request line with
  | Ok req -> req
  | Error msg -> Alcotest.failf "parse_request %S: %s" line msg

(* ---- protocol ---------------------------------------------------------- *)

let test_parse_request () =
  let req = request_exn {|{"id":7,"verb":"health","top":3}|} in
  Alcotest.(check (option int)) "id" (Some 7) req.Protocol.id;
  Alcotest.(check string) "verb" "health" req.Protocol.verb;
  Alcotest.(check int) "field" 3 (Protocol.int_field req.Protocol.body "top");
  let anon = request_exn {|{"verb":"health"}|} in
  Alcotest.(check (option int)) "no id" None anon.Protocol.id;
  let null_id = request_exn {|{"id":null,"verb":"health"}|} in
  Alcotest.(check (option int)) "null id" None null_id.Protocol.id

let test_parse_request_errors () =
  let fails line =
    match Protocol.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error _ -> ()
  in
  fails "not json";
  fails {|{"id":1}|};
  fails {|{"verb":17}|};
  fails {|{"id":"x","verb":"health"}|};
  fails "[1,2,3]";
  fails {|{"verb":"health"|}

let test_field_accessors () =
  let body =
    match Jsonv.parse {|{"n":5,"b":true,"s":"hi"}|} with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "default" 9 (Protocol.int_field ~default:9 body "zzz");
  Alcotest.(check (option int)) "opt" None (Protocol.opt_int_field body "zzz");
  Alcotest.(check bool) "bool" true (Protocol.bool_field body "b");
  Alcotest.(check string) "str" "hi" (Protocol.str_field body "s");
  Alcotest.check_raises "missing str"
    (Protocol.Bad_request "missing string field \"zzz\"") (fun () ->
      ignore (Protocol.str_field body "zzz"));
  Alcotest.check_raises "wrong type"
    (Protocol.Bad_request "field \"s\" must be an integer") (fun () ->
      ignore (Protocol.int_field body "s"))

let test_render_envelopes () =
  let check name expect resp =
    Alcotest.(check string) name expect (Protocol.render resp)
  in
  check "done" {|{"id":1,"status":"ok","verb":"health","payload":{"x":1}}|}
    (Protocol.Done { id = Some 1; verb = "health"; payload = {|{"x":1}|} });
  check "failed null id"
    {|{"id":null,"status":"error","kind":"parse-error","message":"boom \"q\""}|}
    (Protocol.Failed
       { id = None; kind = "parse-error"; message = {|boom "q"|} });
  check "overloaded"
    {|{"id":3,"status":"overloaded","queue_depth":8,"retry_after_ms":100}|}
    (Protocol.Overloaded { id = Some 3; depth = 8; retry_after_ms = 100 });
  check "wall-clock"
    {|{"id":4,"status":"deadline_exceeded","reason":"wall-clock"}|}
    (Protocol.Deadline_exceeded { id = Some 4; reason = Protocol.Wall_clock });
  check "fuel"
    {|{"id":5,"status":"deadline_exceeded","reason":"fuel-exhausted","steps":50}|}
    (Protocol.Deadline_exceeded { id = Some 5; reason = Protocol.Fuel 50 });
  check "poisoned"
    {|{"id":6,"status":"poisoned","signature":"crash:injected","attempts":2}|}
    (Protocol.Poisoned
       { id = Some 6; signature = "crash:injected"; attempts = 2 });
  (* every envelope is itself one line of valid JSON *)
  List.iter
    (fun resp ->
      let line = Protocol.render resp in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Jsonv.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "envelope not JSON (%s): %s" e line)
    [
      Protocol.Done { id = None; verb = "v"; payload = "{}" };
      Protocol.Failed { id = Some 1; kind = "k"; message = "m\nn" };
      Protocol.Overloaded { id = None; depth = 1; retry_after_ms = 1 };
      Protocol.Deadline_exceeded { id = None; reason = Protocol.Wall_clock };
      Protocol.Poisoned { id = None; signature = "wedge"; attempts = 0 };
    ]

(* ---- bounded queue ----------------------------------------------------- *)

let test_bqueue_bounds () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.push q 1 = Bqueue.Pushed 1);
  Alcotest.(check bool) "push 2" true (Bqueue.push q 2 = Bqueue.Pushed 2);
  Alcotest.(check bool) "full" true (Bqueue.push q 3 = Bqueue.Full 2);
  Alcotest.(check int) "depth" 2 (Bqueue.depth q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Bqueue.push q 3 = Bqueue.Pushed 2);
  Bqueue.close q;
  Alcotest.(check bool) "closed" true (Bqueue.push q 4 = Bqueue.Closed);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "drains 3" (Some 3) (Bqueue.pop q);
  Alcotest.(check (option int)) "empty+closed" None (Bqueue.pop q)

let test_bqueue_wakes_blocked_pop () =
  let q : int Bqueue.t = Bqueue.create ~capacity:1 in
  let popper = Domain.spawn (fun () -> Bqueue.pop q) in
  Unix.sleepf 0.02;
  Bqueue.close q;
  Alcotest.(check (option int)) "unblocked by close" None (Domain.join popper)

(* ---- deadlines --------------------------------------------------------- *)

let test_deadline () =
  Alcotest.(check bool) "never" false (Deadline.expired Deadline.never);
  Alcotest.(check bool) "past" true (Deadline.expired (Deadline.after_ms (-10)));
  Alcotest.(check bool) "future" false
    (Deadline.expired (Deadline.after_ms 60_000));
  Alcotest.check_raises "check raises" Deadline.Expired (fun () ->
      Deadline.check (Deadline.after_ms (-1)));
  Deadline.check Deadline.never;
  let early = Deadline.after_ms (-5) in
  Alcotest.(check bool) "earliest picks expired" true
    (Deadline.expired (Deadline.earliest Deadline.never early));
  Alcotest.(check bool) "earliest of two" true
    (Deadline.expired (Deadline.earliest early (Deadline.after_ms 60_000)));
  Alcotest.(check (option int)) "never remaining" None
    (Deadline.remaining_ms Deadline.never);
  (match Deadline.remaining_ms (Deadline.after_ms (-50)) with
  | Some 0 -> ()
  | r ->
    Alcotest.failf "expired remaining = %s"
      (match r with Some n -> string_of_int n | None -> "None"))

(* ---- worker: verbs, isolation, deadlines ------------------------------- *)

let payload_exn name = function
  | Protocol.Done { payload; _ } -> (
    match Jsonv.parse payload with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s payload not JSON: %s" name e)
  | resp -> Alcotest.failf "%s: unexpected %s" name (Protocol.render resp)

let failed_kind name = function
  | Protocol.Failed { kind; _ } -> kind
  | resp -> Alcotest.failf "%s: expected error, got %s" name (Protocol.render resp)

let exec config line = Worker.execute config (request_exn line)

let test_worker_health () =
  let config = fresh_config () in
  let payload = payload_exn "health" (exec config {|{"verb":"health"}|}) in
  Alcotest.(check bool) "has uptime" true
    (Jsonv.member "uptime_ms" payload <> None);
  Alcotest.(check (option int)) "queue depth" (Some 0)
    (Option.bind (Jsonv.member "queue_depth" payload) Jsonv.to_int)

let test_worker_partition () =
  let config = fresh_config () in
  let line =
    Printf.sprintf {|{"id":1,"verb":"partition","file":"%s","timing":8000}|}
      (Lazy.force fir_file)
  in
  let payload = payload_exn "partition" (exec config line) in
  Alcotest.(check (option bool)) "met" (Some true)
    (Option.bind (Jsonv.member "met" payload) Jsonv.to_bool);
  Alcotest.(check (option string)) "status" (Some "met-after-1")
    (Option.bind (Jsonv.member "status" payload) Jsonv.to_str)

let test_worker_analyze () =
  let config = fresh_config () in
  let line =
    Printf.sprintf {|{"verb":"analyze","file":"%s","top":2}|}
      (Lazy.force fir_file)
  in
  let payload = payload_exn "analyze" (exec config line) in
  match Option.bind (Jsonv.member "kernels" payload) Jsonv.to_list with
  | Some [ _; _ ] -> ()
  | Some l -> Alcotest.failf "expected 2 kernels, got %d" (List.length l)
  | None -> Alcotest.fail "no kernels array"

let test_worker_typed_errors () =
  let config = fresh_config () in
  Alcotest.(check string) "unknown verb" "bad-request"
    (failed_kind "verb" (exec config {|{"verb":"reticulate"}|}));
  Alcotest.(check string) "missing field" "bad-request"
    (failed_kind "field" (exec config {|{"verb":"partition"}|}));
  Alcotest.(check string) "missing file" "io:Sys_error"
    (failed_kind "sys"
       (exec config
          {|{"verb":"partition","file":"/nonexistent.mc","timing":1}|}));
  let bad = write_temp ~suffix:".mc" "void main( {" in
  Alcotest.(check string) "frontend" "Frontend_error"
    (failed_kind "frontend"
       (exec config
          (Printf.sprintf {|{"verb":"partition","file":"%s","timing":1}|} bad)));
  let div = write_temp ~suffix:".mc" "int o[1];\nvoid main() { o[0] = 1 / 0; }" in
  Alcotest.(check string) "runtime" "Runtime_error"
    (failed_kind "runtime"
       (exec config
          (Printf.sprintf {|{"verb":"partition","file":"%s","timing":1}|} div)))

let test_worker_survives_errors () =
  (* request isolation: a stream of poisonous requests never leaves the
     worker unable to serve the next good one *)
  let config = fresh_config () in
  List.iter
    (fun line ->
      match exec config line with
      | Protocol.Failed _ | Protocol.Deadline_exceeded _ -> ()
      | resp -> Alcotest.failf "expected failure for %s, got %s" line
                  (Protocol.render resp))
    [
      {|{"verb":"nope"}|};
      {|{"verb":"partition","file":"/nonexistent.mc","timing":1}|};
      {|{"verb":"explore","file":"/nonexistent.mc","timings":"10"}|};
      {|{"verb":"faults","file":"/nonexistent.spec"}|};
    ];
  let line =
    Printf.sprintf {|{"verb":"analyze","file":"%s"}|} (Lazy.force fir_file)
  in
  ignore (payload_exn "after errors" (exec config line))

let test_worker_fuel_deadline () =
  let config = fresh_config () in
  let line =
    Printf.sprintf
      {|{"id":9,"verb":"partition","file":"%s","timing":8000,"fuel":50}|}
      (Lazy.force fir_file)
  in
  (match exec config line with
  | Protocol.Deadline_exceeded { id = Some 9; reason = Protocol.Fuel 50 } -> ()
  | resp -> Alcotest.failf "expected fuel exhaustion, got %s"
              (Protocol.render resp));
  (* the per-request default from the config applies too *)
  let config = fresh_config ~default_fuel:50 () in
  let line =
    Printf.sprintf {|{"verb":"analyze","file":"%s"}|} (Lazy.force fir_file)
  in
  match exec config line with
  | Protocol.Deadline_exceeded { reason = Protocol.Fuel 50; _ } -> ()
  | resp -> Alcotest.failf "expected default fuel cap, got %s"
              (Protocol.render resp)

let test_worker_wall_clock_deadline () =
  let config = fresh_config () in
  let line =
    Printf.sprintf
      {|{"verb":"partition","file":"%s","timing":8000,"deadline_ms":0}|}
      (Lazy.force fir_file)
  in
  match exec config line with
  | Protocol.Deadline_exceeded { reason = Protocol.Wall_clock; _ } -> ()
  | resp -> Alcotest.failf "expected wall-clock expiry, got %s"
              (Protocol.render resp)

let test_worker_drain_cancels_inflight () =
  (* a signal drain with a zero grace period expires every in-flight
     request's effective deadline *)
  let config = fresh_config () in
  let drain = Drain.create ~drain_timeout_ms:0 in
  let config = { config with Worker.drain } in
  Drain.request drain Drain.Signal;
  let line =
    Printf.sprintf {|{"verb":"partition","file":"%s","timing":8000}|}
      (Lazy.force fir_file)
  in
  match exec config line with
  | Protocol.Deadline_exceeded { reason = Protocol.Wall_clock; _ } -> ()
  | resp -> Alcotest.failf "expected drain cancellation, got %s"
              (Protocol.render resp)

(* ---- drain ------------------------------------------------------------- *)

let test_drain_first_reason_wins () =
  let d = Drain.create ~drain_timeout_ms:1000 in
  Alcotest.(check bool) "not draining" false (Drain.draining d);
  Alcotest.(check bool) "no cancel deadline" false
    (Deadline.expired (Drain.cancel_deadline d));
  Drain.request d Drain.Eof;
  Drain.request d Drain.Signal;
  Alcotest.(check bool) "draining" true (Drain.draining d);
  Alcotest.(check bool) "eof kept" true (Drain.reason d = Some Drain.Eof);
  Alcotest.(check bool) "eof sets no cancel deadline" true
    (Drain.cancel_deadline d = Deadline.never)

let test_drain_stats () =
  let d = Drain.create ~drain_timeout_ms:1000 in
  Drain.accepted d;
  Drain.accepted d;
  Drain.record d (Protocol.Done { id = None; verb = "v"; payload = "{}" });
  Drain.record d
    (Protocol.Failed { id = None; kind = "k"; message = "m" });
  Drain.request d Drain.Signal;
  Alcotest.(check string) "stats line"
    "hypar serve: drained (signal): accepted=2 completed=1 errors=1 \
     deadline-exceeded=0 rejected=0 poisoned=0"
    (Drain.stats_line d)

(* ---- sessions ---------------------------------------------------------- *)

(* Run one pipe session over real descriptors: requests are pre-written
   to a temp file (so EOF terminates the session), responses land in a
   second temp file. *)
let run_session ?execute ~jobs requests =
  let in_path = write_temp ~suffix:".jsonl" (String.concat "\n" requests ^ "\n") in
  let out_path = write_temp ~suffix:".out" "" in
  let config =
    {
      Server.jobs;
      max_queue = 64;
      drain_timeout_ms = 1000;
      retry_after_ms = 100;
      faults = None;
      backend = None;
      default_deadline_ms = None;
      default_fuel = None;
      supervisor = None;
    }
  in
  let drain = Drain.create ~drain_timeout_ms:config.Server.drain_timeout_ms in
  let in_fd = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
  let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Fun.protect
    ~finally:(fun () -> Unix.close in_fd; Unix.close out_fd)
    (fun () -> Server.run_session ?execute config drain in_fd out_fd);
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  (drain, lines)

let session_requests () =
  let fir = Lazy.force fir_file in
  [
    Printf.sprintf {|{"id":1,"verb":"analyze","file":"%s","top":1}|} fir;
    "definitely not json";
    Printf.sprintf {|{"id":2,"verb":"partition","file":"%s","timing":8000}|} fir;
    Printf.sprintf
      {|{"id":3,"verb":"partition","file":"%s","timing":8000,"fuel":50}|} fir;
    {|{"id":4,"verb":"nonsense"}|};
  ]

let test_session_pipe_order () =
  let drain, lines = run_session ~jobs:1 (session_requests ()) in
  Alcotest.(check int) "one response per line" 5 (List.length lines);
  let statuses =
    List.map
      (fun l ->
        match Jsonv.parse l with
        | Ok v -> Option.get (Option.bind (Jsonv.member "status" v) Jsonv.to_str)
        | Error e -> Alcotest.failf "bad envelope %s: %s" l e)
      lines
  in
  Alcotest.(check (list string)) "statuses in request order"
    [ "ok"; "error"; "ok"; "deadline_exceeded"; "error" ]
    statuses;
  Alcotest.(check bool) "eof drain" true (Drain.reason drain = Some Drain.Eof);
  Alcotest.(check string) "stats"
    "hypar serve: drained (eof): accepted=5 completed=2 errors=2 \
     deadline-exceeded=1 rejected=0 poisoned=0"
    (Drain.stats_line drain)

let test_session_jobs_equivalence () =
  (* responses (order-normalised) and counter totals are identical for
     jobs=1 and jobs=4 *)
  let run jobs =
    Hypar_obs.Sink.clear ();
    Hypar_obs.Sink.enable ();
    let _, lines = run_session ~jobs (session_requests ()) in
    let events = Hypar_obs.Sink.events () in
    Hypar_obs.Sink.disable ();
    Hypar_obs.Sink.clear ();
    (List.sort compare lines, events)
  in
  let lines1, events1 = run 1 in
  let lines4, events4 = run 4 in
  Alcotest.(check (list string)) "payloads" lines1 lines4;
  Alcotest.(check (list (pair string int))) "counter totals"
    (Hypar_obs.Counter.totals events1)
    (Hypar_obs.Counter.totals events4);
  let summary events =
    match Hypar_obs.Span.validate events with
    | Ok s -> s.Hypar_obs.Span.names
    | Error e -> Alcotest.failf "unbalanced trace: %s" e
  in
  Alcotest.(check (list (pair string int))) "span names"
    (summary events1) (summary events4)

let test_session_backpressure () =
  (* deterministic overload: 2 workers block on a gate, capacity-1 queue
     holds a third request, the remaining two are refused with typed
     overloaded envelopes; after the gate opens everything completes *)
  let gate = Atomic.make false in
  let started = Atomic.make 0 in
  let execute _config (req : Protocol.request) =
    Atomic.incr started;
    while not (Atomic.get gate) do Unix.sleepf 0.002 done;
    Protocol.Done { id = req.Protocol.id; verb = req.Protocol.verb; payload = "{}" }
  in
  let config =
    {
      Server.jobs = 2;
      max_queue = 1;
      drain_timeout_ms = 1000;
      retry_after_ms = 100;
      faults = None;
      backend = None;
      default_deadline_ms = None;
      default_fuel = None;
      supervisor = None;
    }
  in
  let drain = Drain.create ~drain_timeout_ms:1000 in
  let req_r, req_w = Unix.pipe () in
  let out_path = write_temp ~suffix:".out" "" in
  let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let session =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> Unix.close req_r; Unix.close out_fd)
          (fun () -> Server.run_session ~execute config drain req_r out_fd))
  in
  let send line =
    let line = line ^ "\n" in
    ignore (Unix.write_substring req_w line 0 (String.length line))
  in
  (* occupy both workers one request at a time — sending both at once
     could fill the capacity-1 queue before the first pop *)
  let wait_started n =
    let deadline = Unix.gettimeofday () +. 5. in
    while Atomic.get started < n && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.002
    done;
    Alcotest.(check int)
      (Printf.sprintf "%d workers busy" n)
      n (Atomic.get started)
  in
  send {|{"id":1,"verb":"health"}|};
  wait_started 1;
  send {|{"id":2,"verb":"health"}|};
  wait_started 2;
  send {|{"id":3,"verb":"health"}|};  (* queued *)
  send {|{"id":4,"verb":"health"}|};  (* refused *)
  send {|{"id":5,"verb":"health"}|};  (* refused *)
  (* the reader answers overloaded requests synchronously, before it
     reads further input: once both rejections are visible in the stats
     we can release the gate *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rejected () =
    Str_contains.contains (Drain.stats_line drain) "rejected=2"
  in
  while (not (rejected ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Atomic.set gate true;
  Unix.close req_w;
  Domain.join session;
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  let count status =
    List.length
      (List.filter
         (fun l ->
           match Jsonv.parse l with
           | Ok v ->
             Option.bind (Jsonv.member "status" v) Jsonv.to_str = Some status
           | Error _ -> false)
         lines)
  in
  Alcotest.(check int) "five envelopes" 5 (List.length lines);
  Alcotest.(check int) "three completed" 3 (count "ok");
  Alcotest.(check int) "two refused" 2 (count "overloaded");
  (* depth 1 on a 2-worker pool is under one pool-width, so the hint
     stays at the configured base *)
  Alcotest.(check int) "hint at base" 2
    (List.length
       (List.filter
          (fun l -> Str_contains.contains l {|"retry_after_ms":100|})
          lines));
  Alcotest.(check string) "stats"
    "hypar serve: drained (eof): accepted=5 completed=3 errors=0 \
     deadline-exceeded=0 rejected=2 poisoned=0"
    (Drain.stats_line drain)

(* ---- load-aware retry hint --------------------------------------------- *)

let test_retry_after_hint () =
  let hint = Server.retry_after_hint in
  Alcotest.(check int) "empty queue" 100 (hint ~base:100 ~jobs:4 ~depth:0);
  Alcotest.(check int) "under one pool-width" 100 (hint ~base:100 ~jobs:4 ~depth:4);
  Alcotest.(check int) "just over" 200 (hint ~base:100 ~jobs:4 ~depth:5);
  Alcotest.(check int) "scales with depth" 800 (hint ~base:100 ~jobs:2 ~depth:16);
  Alcotest.(check int) "custom base" 120 (hint ~base:40 ~jobs:2 ~depth:6);
  Alcotest.(check int) "jobs clamped" 300 (hint ~base:100 ~jobs:0 ~depth:3)

(* ---- request digests (quarantine identity) ------------------------------ *)

let test_request_digest () =
  let digest line = Protocol.digest (request_exn line) in
  Alcotest.(check string) "id-independent"
    (digest {|{"id":1,"verb":"health"}|})
    (digest {|{"id":2,"verb":"health"}|});
  Alcotest.(check string) "missing id too"
    (digest {|{"verb":"health"}|})
    (digest {|{"id":9,"verb":"health"}|});
  Alcotest.(check bool) "body-sensitive" false
    (digest {|{"verb":"health","tag":1}|} = digest {|{"verb":"health","tag":2}|})

(* ---- randomised invariants --------------------------------------------- *)

(* Two pusher and two popper domains hammer one bounded queue; after the
   close, the popped multiset must equal the successfully-pushed
   multiset — nothing lost, nothing duplicated, no matter the
   interleaving. *)
let prop_bqueue_no_loss_no_dup =
  QCheck.Test.make ~name:"bqueue: concurrent push/pop/close keeps every element"
    ~count:25
    QCheck.(pair (int_range 1 8) (int_range 0 100))
    (fun (capacity, n) ->
      let q = Bqueue.create ~capacity in
      let poppers =
        Array.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let rec go acc =
                  match Bqueue.pop q with
                  | None -> acc
                  | Some x -> go (x :: acc)
                in
                go []))
      in
      let pushers =
        Array.init 2 (fun pi ->
            Domain.spawn (fun () ->
                let acc = ref [] in
                for i = 0 to n - 1 do
                  let x = (pi * n) + i in
                  let rec attempt () =
                    match Bqueue.push q x with
                    | Bqueue.Pushed _ -> acc := x :: !acc
                    | Bqueue.Full _ ->
                      Domain.cpu_relax ();
                      attempt ()
                    | Bqueue.Closed -> ()
                  in
                  attempt ()
                done;
                !acc))
      in
      let pushed = Array.to_list pushers |> List.concat_map Domain.join in
      Bqueue.close q;
      let popped = Array.to_list poppers |> List.concat_map Domain.join in
      List.sort compare pushed = List.sort compare popped
      || QCheck.Test.fail_reportf "pushed %d elements, popped %d"
           (List.length pushed) (List.length popped))

(* Random accept/answer sequences: the stats line always balances —
   accepted = answered (completed+errors+deadline+rejected+poisoned)
   plus the requests still unanswered at close. *)
let prop_drain_stats_balance =
  QCheck.Test.make ~name:"drain: stats arithmetic always balances" ~count:100
    QCheck.(list (int_range 0 5))
    (fun ops ->
      let d = Drain.create ~drain_timeout_ms:10 in
      let unanswered = ref 0 in
      List.iter
        (fun op ->
          Drain.accepted d;
          match op with
          | 0 -> Drain.record d (Protocol.Done { id = None; verb = "v"; payload = "{}" })
          | 1 -> Drain.record d (Protocol.Failed { id = None; kind = "k"; message = "m" })
          | 2 -> Drain.record d (Protocol.Overloaded { id = None; depth = 1; retry_after_ms = 1 })
          | 3 -> Drain.record d (Protocol.Deadline_exceeded { id = None; reason = Protocol.Wall_clock })
          | 4 -> Drain.record d (Protocol.Poisoned { id = None; signature = "s"; attempts = 1 })
          | _ -> incr unanswered (* accepted, never answered: in flight at close *))
        ops;
      Drain.request d Drain.Eof;
      Scanf.sscanf (Drain.stats_line d)
        "hypar serve: drained (eof): accepted=%d completed=%d errors=%d \
         deadline-exceeded=%d rejected=%d poisoned=%d"
        (fun accepted completed errors deadline rejected poisoned ->
          accepted = List.length ops
          && accepted
             = completed + errors + deadline + rejected + poisoned + !unanswered
          || QCheck.Test.fail_reportf
               "unbalanced: accepted=%d answered=%d unanswered=%d" accepted
               (completed + errors + deadline + rejected + poisoned)
               !unanswered))

let suite =
  [
    Alcotest.test_case "protocol: parse request" `Quick test_parse_request;
    Alcotest.test_case "protocol: parse errors" `Quick test_parse_request_errors;
    Alcotest.test_case "protocol: field accessors" `Quick test_field_accessors;
    Alcotest.test_case "protocol: render envelopes" `Quick test_render_envelopes;
    Alcotest.test_case "bqueue: bounds and close" `Quick test_bqueue_bounds;
    Alcotest.test_case "bqueue: close wakes pop" `Quick
      test_bqueue_wakes_blocked_pop;
    Alcotest.test_case "deadline: algebra" `Quick test_deadline;
    Alcotest.test_case "worker: health" `Quick test_worker_health;
    Alcotest.test_case "worker: partition" `Quick test_worker_partition;
    Alcotest.test_case "worker: analyze" `Quick test_worker_analyze;
    Alcotest.test_case "worker: typed errors" `Quick test_worker_typed_errors;
    Alcotest.test_case "worker: survives poisonous requests" `Quick
      test_worker_survives_errors;
    Alcotest.test_case "worker: fuel deadline" `Quick test_worker_fuel_deadline;
    Alcotest.test_case "worker: wall-clock deadline" `Quick
      test_worker_wall_clock_deadline;
    Alcotest.test_case "worker: drain cancels in-flight" `Quick
      test_worker_drain_cancels_inflight;
    Alcotest.test_case "drain: first reason wins" `Quick
      test_drain_first_reason_wins;
    Alcotest.test_case "drain: stats" `Quick test_drain_stats;
    Alcotest.test_case "session: pipe order and envelopes" `Quick
      test_session_pipe_order;
    Alcotest.test_case "session: jobs-independent" `Quick
      test_session_jobs_equivalence;
    Alcotest.test_case "session: backpressure" `Quick test_session_backpressure;
    Alcotest.test_case "overload: load-aware retry hint" `Quick
      test_retry_after_hint;
    Alcotest.test_case "protocol: request digest" `Quick test_request_digest;
    QCheck_alcotest.to_alcotest prop_bqueue_no_loss_no_dup;
    QCheck_alcotest.to_alcotest prop_drain_stats_balance;
  ]
