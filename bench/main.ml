(* Benchmark harness: regenerates every table of the paper's evaluation
   section (Tables 1-3), the shape claims of §4, ablations over the design
   axes, the two extensions, and Bechamel micro-benchmarks of the core
   algorithms.

   Run everything:        dune exec bench/main.exe
   Run one section:       dune exec bench/main.exe -- table2 ablation:afpga

   Absolute cycle counts are produced by our models of the paper's models
   (see DESIGN.md); EXPERIMENTS.md compares shapes against the published
   numbers. *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Platform = Hypar_core.Platform
module Ofdm = Hypar_apps.Ofdm
module Jpeg = Hypar_apps.Jpeg

let section_header name =
  Printf.printf "\n================ %s ================\n" name

let platform ?(area = 1500) ?(cgcs = 2) ?(rows = 2) ?(cols = 2) ?(ratio = 3) ()
    =
  Platform.make ~clock_ratio:ratio
    ~fpga:(Hypar_finegrain.Fpga.make ~area ())
    ~cgc:(Hypar_coarsegrain.Cgc.make ~cgcs ~rows ~cols ())
    ()

let apps () =
  [
    ("OFDM", Ofdm.prepared (), Ofdm.timing_constraint, Ofdm.symbols);
    ("JPEG", Jpeg.prepared (), Jpeg.timing_constraint, Jpeg.blocks);
  ]

(* ---- Table 1: ordered total weights of the basic blocks ---------------- *)

let paper_table1 =
  [
    ( "OFDM",
      [ (22, 336, 115, 38640); (12, 1200, 25, 30000); (3, 864, 6, 5184);
        (5, 370, 12, 4440); (42, 800, 5, 4000); (32, 560, 6, 3360);
        (29, 448, 7, 3136); (21, 147, 18, 2646) ] );
    ( "JPEG",
      [ (6, 355024, 3, 1065072); (2, 8192, 85, 696320); (1, 8192, 83, 679936);
        (22, 65536, 5, 327680); (8, 30927, 8, 247416); (3, 65536, 3, 196608);
        (16, 63540, 3, 190620); (17, 63540, 2, 127080) ] );
  ]

let table1 () =
  section_header "Table 1 — ordered total weights of basic blocks";
  List.iter
    (fun (name, prepared, _, _) ->
      let analysis =
        Hypar_analysis.Kernel.analyse prepared.Flow.cdfg prepared.Flow.profile
      in
      print_string
        (Hypar_analysis.Table.render ~top:8
           ~title:(Printf.sprintf "%s — measured" name)
           analysis);
      print_newline ();
      Printf.printf "%s — paper reference:\n" name;
      Printf.printf
        "Basic Block no. | exec. freq. | Operations weight | Total weight\n";
      List.iter
        (fun (bb, freq, w, total) ->
          Printf.printf "%15d | %11d | %17d | %12d\n" bb freq w total)
        (List.assoc name paper_table1);
      print_newline ())
    (apps ())

(* ---- Tables 2 and 3: partitioning on the four configurations ----------- *)

let paper_partitioning =
  [
    ( "OFDM",
      "paper: initial 263408/124080; in-CGC 53184|41472; moved 22,12,3 | \
       22,12; final 57088|47856|56864|46512; reduction 78.3|81.8|54.1|62.5" );
    ( "JPEG",
      "paper: initial 18434e3/12399e3; in-CGC 5817e3|5699e3; moved 6,2,1; \
       final 10558e3|10411e3|10423e3|10227e3; reduction 42.7|43.5|15.9|17.5" );
  ]

let partition_table name prepared timing_constraint =
  let runs =
    List.map
      (fun pl -> Flow.partition pl ~timing_constraint prepared)
      (Platform.paper_configs ())
  in
  print_string
    (Hypar_core.Result_table.render
       ~title:(Printf.sprintf "%s partitioning — measured" name)
       runs);
  Printf.printf "%s\n" (List.assoc name paper_partitioning)

let table2 () =
  section_header "Table 2 — OFDM partitioning (constraint 60000 cycles)";
  partition_table "OFDM" (Ofdm.prepared ()) Ofdm.timing_constraint

let table3 () =
  section_header "Table 3 — JPEG partitioning (constraint 11e6 cycles)";
  partition_table "JPEG" (Jpeg.prepared ()) Jpeg.timing_constraint

(* ---- Ablation A: A_FPGA sweep ------------------------------------------ *)

let ablation_afpga () =
  section_header "Ablation A — A_FPGA sweep (two 2x2 CGCs)";
  List.iter
    (fun (name, prepared, timing_constraint, _) ->
      Printf.printf "%s (constraint %d):\n" name timing_constraint;
      Printf.printf "%8s %16s %16s %10s %7s\n" "A_FPGA" "initial" "final"
        "reduction" "moved";
      List.iter
        (fun area ->
          let r =
            Flow.partition (platform ~area ()) ~timing_constraint prepared
          in
          Printf.printf "%8d %16d %16d %9.1f%% %7d\n" area
            r.Engine.initial.Engine.t_total r.Engine.final.Engine.t_total
            (Engine.reduction_percent r)
            (List.length r.Engine.moved))
        [ 500; 1000; 1500; 2500; 5000; 10000 ];
      print_newline ())
    (apps ())

(* ---- Ablation B: CGC count and geometry -------------------------------- *)

let ablation_cgc () =
  section_header "Ablation B — CGC data-path sweep (A_FPGA = 1500)";
  List.iter
    (fun (name, prepared, timing_constraint, _) ->
      Printf.printf "%s:\n" name;
      Printf.printf "%14s %16s %16s %10s\n" "data-path" "cycles-in-CGC" "final"
        "reduction";
      List.iter
        (fun (cgcs, rows, cols) ->
          let r =
            Flow.partition (platform ~cgcs ~rows ~cols ()) ~timing_constraint
              prepared
          in
          Printf.printf "%14s %16d %16d %9.1f%%\n"
            (Printf.sprintf "%d x %dx%d" cgcs rows cols)
            (Engine.coarse_cycles_of_moved r)
            r.Engine.final.Engine.t_total
            (Engine.reduction_percent r))
        [ (1, 2, 2); (2, 2, 2); (3, 2, 2); (4, 2, 2); (2, 1, 2); (2, 2, 4) ];
      print_newline ())
    (apps ())

(* ---- Ablation C: clock ratio ------------------------------------------- *)

let ablation_clock_ratio () =
  section_header "Ablation C — T_FPGA/T_CGC ratio (paper assumes 3)";
  List.iter
    (fun (name, prepared, timing_constraint, _) ->
      Printf.printf "%s:\n" name;
      Printf.printf "%8s %16s %10s %7s\n" "ratio" "final" "reduction" "moved";
      List.iter
        (fun ratio ->
          let r =
            Flow.partition (platform ~ratio ()) ~timing_constraint prepared
          in
          Printf.printf "%8d %16d %9.1f%% %7d\n" ratio
            r.Engine.final.Engine.t_total
            (Engine.reduction_percent r)
            (List.length r.Engine.moved))
        [ 1; 2; 3; 4; 6 ];
      print_newline ())
    (apps ())

(* ---- Ablation D: communication-model sensitivity ------------------------ *)

let ablation_comm () =
  section_header "Ablation D — t_comm pricing (transition vs per-invocation)";
  List.iter
    (fun (name, prepared, timing_constraint, _) ->
      Printf.printf "%s:\n" name;
      Printf.printf "%16s %16s %16s %8s\n" "pricing" "t_comm" "final" "met";
      List.iter
        (fun (label, pricing) ->
          let r =
            Engine.run ~comm_pricing:pricing
              (platform ())
              ~timing_constraint prepared.Flow.cdfg prepared.Flow.profile
          in
          Printf.printf "%16s %16d %16d %8b\n" label
            r.Engine.final.Engine.t_comm r.Engine.final.Engine.t_total
            (Engine.met r))
        [ ("transition", `Transition); ("per-invocation", `Per_invocation) ];
      print_newline ())
    (apps ())

(* ---- Ablation I: input scaling ------------------------------------------- *)

(* Eq. 3/4 weight every block by Iter(BB): doubling the payload must
   (asymptotically) double every time component. *)
let ablation_scaling () =
  section_header "Ablation I — OFDM payload scaling (Iter() accounting)";
  Printf.printf "%8s %16s %16s %16s %10s\n" "symbols" "initial" "final"
    "t_comm" "reduction";
  List.iter
    (fun symbols ->
      let prepared =
        Flow.prepare
          ~name:(Printf.sprintf "ofdm%d" symbols)
          ~inputs:(Ofdm.inputs_for ~symbols ())
          (Ofdm.source_for ~symbols)
      in
      let r =
        Flow.partition (platform ())
          ~timing_constraint:(Ofdm.timing_constraint * symbols / Ofdm.symbols)
          prepared
      in
      Printf.printf "%8d %16d %16d %16d %9.1f%%\n" symbols
        r.Engine.initial.Engine.t_total r.Engine.final.Engine.t_total
        r.Engine.final.Engine.t_comm
        (Engine.reduction_percent r))
    [ 2; 4; 6; 12; 24; 48 ];
  print_newline ()

(* ---- Ablation H: list-scheduling priority -------------------------------- *)

let ablation_priority () =
  section_header "Ablation H — list-scheduling priority (ALAP vs baselines)";
  Printf.printf "%-26s %10s %10s %10s\n" "DFG" "ALAP" "ASAP" "program";
  let cgc = Hypar_coarsegrain.Cgc.two_by_two 2 in
  let makespans dfg =
    List.map
      (fun priority ->
        (Hypar_coarsegrain.Schedule.schedule ~priority cgc dfg)
          .Hypar_coarsegrain.Schedule.makespan)
      [ `Alap; `Asap; `Program ]
  in
  let report name dfg =
    match makespans dfg with
    | [ a; b; c ] -> Printf.printf "%-26s %10d %10d %10d\n" name a b c
    | _ -> ()
  in
  let jpeg = Jpeg.prepared () in
  report "JPEG DCT row pass"
    (Hypar_ir.Cdfg.info jpeg.Flow.cdfg 5).Hypar_ir.Cdfg.dfg;
  let ofdm = Ofdm.prepared () in
  let butterfly =
    let best = ref 0 in
    List.iter
      (fun i ->
        let d = (Hypar_ir.Cdfg.info ofdm.Flow.cdfg i).Hypar_ir.Cdfg.dfg in
        let cur = (Hypar_ir.Cdfg.info ofdm.Flow.cdfg !best).Hypar_ir.Cdfg.dfg in
        if Hypar_ir.Dfg.node_count d > Hypar_ir.Dfg.node_count cur then best := i)
      (Hypar_ir.Cdfg.block_ids ofdm.Flow.cdfg);
    (Hypar_ir.Cdfg.info ofdm.Flow.cdfg !best).Hypar_ir.Cdfg.dfg
  in
  report "OFDM butterfly" butterfly;
  List.iter
    (fun seed ->
      report
        (Printf.sprintf "random (seed %d)" seed)
        (Hypar_apps.Synth.random_dfg ~seed ~nodes:120 ()))
    [ 4; 5; 6 ];
  print_newline ()

(* ---- Ablation E: kernel-selection strategies ---------------------------- *)

let ablation_strategy () =
  section_header
    "Ablation E — kernel selection: paper greedy vs baselines";
  let strategy_apps =
    List.map (fun (n, p, t, _) -> (n, p, t)) (apps ())
    @ [ ("ADPCM (branchy loop)", Hypar_apps.Adpcm.prepared (),
         Hypar_apps.Adpcm.timing_constraint) ]
  in
  List.iter
    (fun (name, prepared, timing_constraint) ->
      Printf.printf "%s (constraint %d):\n" name timing_constraint;
      Printf.printf "%-28s %7s %16s %6s %8s\n" "strategy" "moves" "final" "met"
        "evals";
      List.iter
        (fun (o : Hypar_core.Baselines.outcome) ->
          Printf.printf "%-28s %7d %16d %6b %8d\n" o.name
            (List.length o.moved) o.t_total o.met o.evaluations)
        (Hypar_core.Baselines.compare_all (platform ()) ~timing_constraint
           prepared.Flow.cdfg prepared.Flow.profile);
      print_newline ())
    strategy_apps

(* ---- Ablation F: temporal-partitioning algorithm ------------------------ *)

let ablation_temporal () =
  section_header
    "Ablation F — Figure-3 first-fit vs first-fit-with-backfill";
  Printf.printf "%-22s %8s %12s %12s\n" "DFG" "A_FPGA" "paper(Fig.3)"
    "backfill";
  let fpga a = Hypar_finegrain.Fpga.make ~area:a () in
  let report name dfg area =
    let size = Hypar_finegrain.Fpga.op_area (fpga area) in
    let paper = Hypar_finegrain.Temporal.partition ~area ~size dfg in
    let bf = Hypar_finegrain.Temporal.partition_best_fit ~area ~size dfg in
    Printf.printf "%-22s %8d %12d %12d\n" name area
      (Hypar_finegrain.Temporal.count paper)
      (Hypar_finegrain.Temporal.count bf)
  in
  let jpeg = Jpeg.prepared () in
  let dct =
    (Hypar_ir.Cdfg.info jpeg.Flow.cdfg 5).Hypar_ir.Cdfg.dfg
  in
  List.iter (fun a -> report "JPEG DCT row pass" dct a) [ 500; 1000; 1500; 5000 ];
  List.iter
    (fun seed ->
      let dfg = Hypar_apps.Synth.random_dfg ~seed ~nodes:150 () in
      report (Printf.sprintf "random (seed %d)" seed) dfg 1500)
    [ 1; 2; 3 ];
  print_newline ()

(* ---- Ablation G: reconfiguration-time model ------------------------------ *)

(* The full flow under three reconfiguration-time models: the calibrated
   flat constant, and cycles derived from configuration bit-stream length
   (full-device — the paper's stated model — and per-column partial).
   See Hypar_finegrain.Bitstream for the generated streams themselves. *)
let ablation_reconfig () =
  section_header "Ablation G — reconfiguration time from bit-stream length";
  let models =
    [
      ("flat (calibrated 24)", Hypar_finegrain.Fpga.Flat);
      ( "bitstream, full device",
        Hypar_finegrain.Fpga.Frame_full Hypar_finegrain.Fpga.default_frame_params );
      ( "bitstream, per column",
        Hypar_finegrain.Fpga.Frame_partial Hypar_finegrain.Fpga.default_frame_params );
    ]
  in
  List.iter
    (fun (name, prepared, timing_constraint, _) ->
      Printf.printf "%s (A=1500, two 2x2 CGCs, constraint %d):\n" name
        timing_constraint;
      Printf.printf "%-26s %16s %16s %10s %6s\n" "reconfiguration model"
        "initial" "final" "reduction" "met";
      List.iter
        (fun (label, reconfig_model) ->
          let pl =
            Platform.make
              ~fpga:(Hypar_finegrain.Fpga.make ~area:1500 ~reconfig_model ())
              ~cgc:(Hypar_coarsegrain.Cgc.two_by_two 2)
              ()
          in
          let r = Flow.partition pl ~timing_constraint prepared in
          Printf.printf "%-26s %16d %16d %9.1f%% %6b\n" label
            r.Engine.initial.Engine.t_total r.Engine.final.Engine.t_total
            (Engine.reduction_percent r) (Engine.met r))
        models;
      print_newline ())
    (apps ())

(* ---- Extension 1: frame pipelining -------------------------------------- *)

let extension_pipeline () =
  section_header "Extension 1 — pipelined fine/coarse execution (paper §5)";
  List.iter
    (fun (name, prepared, timing_constraint, frames) ->
      Printf.printf "%s (%d frames):\n" name frames;
      List.iter
        (fun pl ->
          let r = Flow.partition pl ~timing_constraint prepared in
          let p = Hypar_core.Pipeline.analyse ~frames r in
          Format.printf "  %-28s %a@." pl.Platform.name Hypar_core.Pipeline.pp p)
        (Platform.paper_configs ());
      print_newline ())
    (apps ())

(* ---- Extension 3: CGC loop pipelining (modulo scheduling) ---------------- *)

let extension_modulo () =
  section_header
    "Extension 3 — CGC loop pipelining (modulo scheduling of moved kernels)";
  List.iter
    (fun (name, prepared, timing_constraint, _) ->
      Printf.printf "%s (A=1500, two 2x2 CGCs):\n" name;
      Printf.printf "%-16s %16s %16s %16s %10s\n" "pricing" "cycles-in-CGC"
        "t_coarse" "final" "reduction";
      List.iter
        (fun (label, pipelined) ->
          let r =
            Engine.run ~cgc_pipelining:pipelined (platform ()) ~timing_constraint
              prepared.Flow.cdfg prepared.Flow.profile
          in
          Printf.printf "%-16s %16d %16d %16d %9.1f%%\n" label
            r.Engine.final.Engine.t_coarse_cgc r.Engine.final.Engine.t_coarse
            r.Engine.final.Engine.t_total
            (Engine.reduction_percent r))
        [ ("Eq. 3 (flat)", false); ("pipelined (II)", true) ];
      print_newline ())
    (apps ())

(* ---- Extension 2: energy-constrained partitioning ----------------------- *)

let extension_energy () =
  section_header "Extension 2 — energy-constrained partitioning (paper §5)";
  List.iter
    (fun (name, prepared, _, _) ->
      let pl = platform () in
      let base =
        Hypar_core.Energy.partition Hypar_core.Energy.default pl
          ~energy_budget:0 prepared.Flow.cdfg prepared.Flow.profile
      in
      let initial = base.Hypar_core.Energy.initial_energy in
      Printf.printf "%s (all-FPGA energy %d):\n" name initial;
      Printf.printf "%12s %16s %10s %7s %6s\n" "budget" "final" "saved" "moved"
        "met";
      List.iter
        (fun percent ->
          let budget = initial * percent / 100 in
          let r =
            Hypar_core.Energy.partition Hypar_core.Energy.default pl
              ~energy_budget:budget prepared.Flow.cdfg prepared.Flow.profile
          in
          Printf.printf "%11d%% %16d %9.1f%% %7d %6b\n" percent
            r.Hypar_core.Energy.final_energy
            (Hypar_core.Energy.reduction_percent r)
            (List.length r.Hypar_core.Energy.moved)
            r.Hypar_core.Energy.feasible)
        [ 80; 60; 40; 20; 10 ];
      print_newline ())
    (apps ())

(* ---- Explore: parallel DSE throughput + cache hit-rate ------------------- *)

(* Points/sec of the exploration engine, sequential vs multi-domain, on a
   duplicate-free grid; then the memo cache on a grid that repeats one
   configuration.  Identical summaries across jobs levels are asserted —
   the determinism the unit suite also pins down. *)
let explore_bench () =
  section_header "Explore — DSE throughput (jobs) and memo-cache hit-rate";
  let module Space = Hypar_explore.Space in
  let module Driver = Hypar_explore.Driver in
  let module Render = Hypar_explore.Render in
  let n = 12 in
  let inputs =
    [
      ("a", Array.init (n * n) (fun i -> (i * 7) mod 23));
      ("b", Array.init (n * n) (fun i -> (i * 5) mod 19));
    ]
  in
  let prepared =
    Flow.prepare ~name:"matmul12" ~inputs (Hypar_apps.Synth.matmul_source ~n)
  in
  let budget =
    match
      Hypar_explore.Eval.evaluate prepared
        { Space.area = 1500; cgcs = 2; rows = 2; cols = 2; clock_ratio = 3;
          timing = max_int }
    with
    | Ok m -> m.Hypar_explore.Eval.initial.Engine.t_total / 2
    | Error msg -> failwith msg
  in
  let space =
    Space.make
      ~areas:[ 400; 800; 1200; 1600; 2000; 2400 ]
      ~cgcs:[ 1; 2; 3 ] ~timings:[ budget ] ()
  in
  Printf.printf "grid: %d points (no duplicates), constraint %d\n"
    (Space.size space) budget;
  Printf.printf "%6s %10s %12s %12s\n" "jobs" "points" "seconds" "points/s";
  let reference = ref None in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      match Driver.run ~jobs prepared space with
      | Error msg -> Printf.printf "  jobs=%d failed: %s\n" jobs msg
      | Ok summary ->
        let dt = Unix.gettimeofday () -. t0 in
        let pts = Array.length summary.Driver.results in
        Printf.printf "%6d %10d %12.3f %12.1f\n" jobs pts dt
          (float_of_int pts /. dt);
        let rendered = Render.json summary in
        (match !reference with
        | None -> reference := Some rendered
        | Some r ->
          if r <> rendered then
            Printf.printf "  WARNING: jobs=%d diverged from jobs=1\n" jobs))
    [ 1; 2; 4 ];
  let dup =
    Space.make ~areas:[ 1500; 1500; 1500; 1500 ] ~cgcs:[ 2; 2 ]
      ~clock_ratios:[ 3; 3 ] ~timings:[ budget ] ()
  in
  (match Driver.run prepared dup with
  | Error msg -> Printf.printf "duplicate grid failed: %s\n" msg
  | Ok summary ->
    let stats = summary.Driver.cache in
    let total = stats.Hypar_explore.Cache.hits + stats.Hypar_explore.Cache.misses in
    Printf.printf
      "duplicate grid: %d points, %d unique -> %d hits / %d misses (%.0f%% \
       hit-rate)\n"
      total stats.Hypar_explore.Cache.misses stats.Hypar_explore.Cache.hits
      stats.Hypar_explore.Cache.misses
      (100. *. float_of_int stats.Hypar_explore.Cache.hits /. float_of_int total));
  print_newline ()

(* ---- Observability overhead gate ----------------------------------------- *)

(* The disabled-path guarantee is part of the Hypar_obs contract: with
   tracing off, every probe is a single atomic load.  Measure the full
   OFDM flow with the sink off and on, count the probes a traced run
   fires, and price the disabled probe directly in a tight loop; the
   estimated disabled-path overhead (probes/run x ns/probe, relative to
   the untraced run) must stay under 2% or the bench exits 1.  Pricing
   the probe directly instead of differencing two full-flow timings keeps
   the gate robust to scheduler noise. *)
let obs_bench () =
  section_header "Obs — tracing overhead (enabled vs disabled) on OFDM";
  let prepared = Ofdm.prepared () in
  let pl = platform () in
  let flow () =
    ignore (Flow.partition pl ~timing_constraint:Ofdm.timing_constraint prepared)
  in
  let time_best ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  flow ();
  (* warmed up *)
  let t_off = time_best ~reps:7 flow in
  Hypar_obs.Sink.enable ();
  let t_on =
    time_best ~reps:7 (fun () ->
        Hypar_obs.Sink.clear ();
        flow ())
  in
  Hypar_obs.Sink.clear ();
  flow ();
  let events_per_run = List.length (Hypar_obs.Sink.events ()) in
  Hypar_obs.Sink.disable ();
  Hypar_obs.Sink.clear ();
  let calls = 5_000_000 in
  let t_probe =
    time_best ~reps:5 (fun () ->
        for _ = 1 to calls do
          Hypar_obs.Counter.incr "bench.probe"
        done)
  in
  let per_probe = t_probe /. float_of_int calls in
  let disabled_overhead = float_of_int events_per_run *. per_probe /. t_off in
  Printf.printf "flow, tracing off : %10.3f ms/run (best of 7)\n" (t_off *. 1e3);
  Printf.printf "flow, tracing on  : %10.3f ms/run, %d events/run (x%.2f)\n"
    (t_on *. 1e3) events_per_run (t_on /. t_off);
  Printf.printf "disabled probe    : %10.2f ns/call\n" (per_probe *. 1e9);
  Printf.printf
    "disabled-path overhead: %.4f%% of the untraced run (budget: 2%%)\n"
    (100. *. disabled_overhead);
  if disabled_overhead > 0.02 then begin
    Printf.printf "FAIL: disabled tracing path exceeds the 2%% overhead budget\n";
    exit 1
  end;
  print_newline ()

(* ---- Resilience overhead gate -------------------------------------------- *)

(* The hardened explore driver wraps every point evaluation in
   [Retry.run] and consults the fault spec; with no faults and no
   retries configured that wrapper is the only cost the resilience layer
   adds to a fault-free sweep.  Price the wrapper directly in a tight
   loop (same technique as the obs gate — differencing two full sweeps
   drowns in scheduler noise), relate it to the time of one real point
   evaluation, and fail the bench if the fault-free overhead exceeds
   2%. *)
let resilience_bench () =
  section_header "Resilience — fault-free hardening overhead on explore";
  let module Eval = Hypar_explore.Eval in
  let module Space = Hypar_explore.Space in
  let module Retry = Hypar_resilience.Retry in
  let prepared = Ofdm.prepared () in
  let point =
    { Space.area = 1500; cgcs = 2; rows = 2; cols = 2; clock_ratio = 3;
      timing = Ofdm.timing_constraint }
  in
  let time_best ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let eval () = ignore (Eval.evaluate prepared point) in
  eval ();
  (* warmed up *)
  let t_eval = time_best ~reps:7 eval in
  let calls = 2_000_000 in
  let payload _attempt = Ok () in
  let bare () =
    for _ = 1 to calls do
      ignore (Sys.opaque_identity (payload 1))
    done
  in
  let wrapped () =
    for _ = 1 to calls do
      ignore (Sys.opaque_identity (Retry.run ~retries:0 payload))
    done
  in
  let t_bare = time_best ~reps:5 bare in
  let t_wrapped = time_best ~reps:5 wrapped in
  let per_call =
    Float.max 0. ((t_wrapped -. t_bare) /. float_of_int calls)
  in
  let overhead = per_call /. t_eval in
  Printf.printf "point evaluation   : %10.3f ms (OFDM, best of 7)\n"
    (t_eval *. 1e3);
  Printf.printf "retry wrapper      : %10.2f ns/point\n" (per_call *. 1e9);
  Printf.printf
    "fault-free overhead: %.6f%% of one point evaluation (budget: 2%%)\n"
    (100. *. overhead);
  if overhead > 0.02 then begin
    Printf.printf "FAIL: resilience hardening exceeds the 2%% overhead budget\n";
    exit 1
  end;
  print_newline ()

(* ---- Serve wrapper overhead gate ----------------------------------------- *)

(* Every serve request pays the envelope machinery on top of the work
   itself: parse, deadline construction, the dispatch match, the
   isolation boundary and the response render.  Price that wrapper with
   the cheapest verb (health — no file work, so what remains IS the
   wrapper), relate it to one real partition request through the same
   path, and gate it at the same 2% budget as the obs and resilience
   layers.  The sink stays disabled throughout, matching the
   disabled-observability contract the rest of the pipeline is held to. *)
let serve_bench () =
  section_header "Serve — per-request wrapper overhead (sink disabled)";
  let module Worker = Hypar_server.Worker in
  let module Protocol = Hypar_server.Protocol in
  let src_file = Filename.temp_file "hypar_bench" ".mc" in
  let oc = open_out src_file in
  output_string oc Ofdm.source;
  close_out oc;
  let config =
    {
      Worker.faults = None;
      backend = None;
      default_deadline_ms = None;
      default_fuel = None;
      drain = Hypar_server.Drain.create ~drain_timeout_ms:1000;
      queue_depth = (fun () -> 0);
      on_poll = None;
    }
  in
  let request line =
    match Protocol.parse_request line with
    | Ok req -> req
    | Error e -> failwith e
  in
  let partition_req =
    request
      (Printf.sprintf {|{"id":1,"verb":"partition","file":"%s","timing":%d}|}
         src_file Ofdm.timing_constraint)
  in
  let health_req = request {|{"id":2,"verb":"health"}|} in
  let time_best ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let run req () =
    match Worker.execute config req with
    | Protocol.Done _ -> ()
    | resp -> failwith (Protocol.render resp)
  in
  run partition_req ();
  (* warmed up *)
  let t_req = time_best ~reps:7 (run partition_req) in
  let calls = 100_000 in
  let t_wrap =
    time_best ~reps:5 (fun () ->
        for _ = 1 to calls do
          run health_req ()
        done)
  in
  Sys.remove src_file;
  let per_wrap = t_wrap /. float_of_int calls in
  let overhead = per_wrap /. t_req in
  Printf.printf "partition request  : %10.3f ms/request (OFDM, best of 7)\n"
    (t_req *. 1e3);
  Printf.printf "request wrapper    : %10.2f ns/request (health, %d calls)\n"
    (per_wrap *. 1e9) calls;
  Printf.printf
    "wrapper overhead   : %.4f%% of one partition request (budget: 2%%)\n"
    (100. *. overhead);
  if overhead > 0.02 then begin
    Printf.printf "FAIL: serve wrapper exceeds the 2%% overhead budget\n";
    exit 1
  end;
  print_newline ()

(* ---- Soak: supervision overhead gate ------------------------------------- *)

(* The self-healing pool rides along on every request even when nothing
   goes wrong: heartbeat stores, the settle CAS, the monitor domain's
   2 ms tick.  Price that tax by streaming the same chaos-free request
   list through a supervised session and through the legacy pooled
   session, attributing the wall-time delta per request, and relating it
   to one real partition request — the same shape as the serve wrapper
   gate, and the same 2% budget.  The sorted response envelopes must
   also be identical: chaos-free supervision is a pure refactoring of
   the plain pool. *)
let soak_bench () =
  section_header "Soak — chaos-free supervision overhead";
  let module Worker = Hypar_server.Worker in
  let module Protocol = Hypar_server.Protocol in
  let module Server = Hypar_server.Server in
  let module Supervisor = Hypar_server.Supervisor in
  let src_file = Filename.temp_file "hypar_bench" ".mc" in
  let oc = open_out src_file in
  output_string oc Ofdm.source;
  close_out oc;
  let n = 1000 in
  let lines =
    List.init n (fun i ->
        Printf.sprintf {|{"id":%d,"verb":"health"}|} (i + 1))
  in
  let write_all fd s =
    let rec go off len =
      if len > 0 then
        match Unix.write_substring fd s off len with
        | k -> go (off + k) (len - k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
    in
    go 0 (String.length s)
  in
  let read_all fd =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | k ->
        Buffer.add_subbytes buf chunk 0 k;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let run_session ~supervisor =
    let config =
      {
        Server.jobs = 2;
        max_queue = n;
        drain_timeout_ms = 10_000;
        retry_after_ms = 100;
        faults = None;
        backend = None;
        default_deadline_ms = None;
        default_fuel = None;
        supervisor;
      }
    in
    let req_r, req_w = Unix.pipe ~cloexec:true () in
    let resp_r, resp_w = Unix.pipe ~cloexec:true () in
    let feeder =
      Domain.spawn (fun () ->
          List.iter (fun l -> write_all req_w (l ^ "\n")) lines;
          Unix.close req_w)
    in
    let collector = Domain.spawn (fun () -> read_all resp_r) in
    let drain = Hypar_server.Drain.create ~drain_timeout_ms:10_000 in
    let t0 = Unix.gettimeofday () in
    Server.run_session config drain req_r resp_w;
    let dt = Unix.gettimeofday () -. t0 in
    Unix.close resp_w;
    Domain.join feeder;
    let out = Domain.join collector in
    Unix.close req_r;
    Unix.close resp_r;
    (dt, out)
  in
  let best f =
    let t = ref infinity and out = ref "" in
    for _ = 1 to 5 do
      let dt, o = f () in
      if dt < !t then begin
        t := dt;
        out := o
      end
    done;
    (!t, !out)
  in
  ignore (run_session ~supervisor:None);
  (* warmed up *)
  let t_legacy, out_legacy = best (fun () -> run_session ~supervisor:None) in
  let t_sup, out_sup =
    best (fun () -> run_session ~supervisor:(Some Supervisor.default_options))
  in
  (* denominator: one real partition request through the worker, the
     unit the per-request supervision tax is charged against *)
  let wconfig =
    {
      Worker.faults = None;
      backend = None;
      default_deadline_ms = None;
      default_fuel = None;
      drain = Hypar_server.Drain.create ~drain_timeout_ms:1000;
      queue_depth = (fun () -> 0);
      on_poll = None;
    }
  in
  let partition_req =
    match
      Protocol.parse_request
        (Printf.sprintf {|{"id":1,"verb":"partition","file":"%s","timing":%d}|}
           src_file Ofdm.timing_constraint)
    with
    | Ok req -> req
    | Error e -> failwith e
  in
  let time_best ~reps f =
    let bestt = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !bestt then bestt := dt
    done;
    !bestt
  in
  let t_req =
    time_best ~reps:7 (fun () ->
        match Worker.execute wconfig partition_req with
        | Protocol.Done _ -> ()
        | resp -> failwith (Protocol.render resp))
  in
  Sys.remove src_file;
  (* health payloads carry uptime and instantaneous queue depth, which
     differ between any two runs — compare the envelope signatures
     (id/status/verb), which must agree exactly *)
  let signature line =
    let key = "\"payload\"" in
    let n = String.length line and k = String.length key in
    let rec find i =
      if i + k > n then line
      else if String.sub line i k = key then String.sub line 0 i
      else find (i + 1)
    in
    find 0
  in
  let sorted out =
    String.split_on_char '\n' out |> List.map signature |> List.sort compare
  in
  let identical = sorted out_legacy = sorted out_sup in
  let per_req = Float.max 0. ((t_sup -. t_legacy) /. float_of_int n) in
  let overhead = per_req /. t_req in
  Printf.printf "legacy session     : %10.3f ms (%d health requests, best of 5)\n"
    (t_legacy *. 1e3) n;
  Printf.printf "supervised session : %10.3f ms (same stream, chaos off)\n"
    (t_sup *. 1e3);
  Printf.printf "envelopes identical: %s\n" (if identical then "yes" else "NO");
  Printf.printf "supervision tax    : %10.2f ns/request\n" (per_req *. 1e9);
  Printf.printf
    "supervision overhead: %.4f%% of one partition request (budget: 2%%)\n"
    (100. *. overhead);
  let failed = ref false in
  if not identical then begin
    Printf.printf
      "FAIL: chaos-free supervised responses differ from the legacy pool\n";
    failed := true
  end;
  if overhead > 0.02 then begin
    Printf.printf "FAIL: supervision exceeds the 2%% overhead budget\n";
    failed := true
  end;
  if !failed then exit 1;
  let oc = open_out "BENCH_soak.json" in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"soak\",\n\
    \  \"requests\": %d,\n\
    \  \"legacy_seconds\": %.6f,\n\
    \  \"supervised_seconds\": %.6f,\n\
    \  \"supervision_ns_per_request\": %.2f,\n\
    \  \"partition_request_seconds\": %.6f,\n\
    \  \"overhead_fraction\": %.6f,\n\
    \  \"budget_fraction\": 0.02,\n\
    \  \"envelopes_identical\": %b\n\
     }\n"
    n t_legacy t_sup (per_req *. 1e9) t_req overhead identical;
  close_out oc;
  Printf.printf "wrote BENCH_soak.json\n";
  print_newline ()

(* ---- Bechamel micro-benchmarks ------------------------------------------ *)

let micro () =
  section_header "Micro-benchmarks (Bechamel) — core algorithm costs";
  let open Bechamel in
  let open Toolkit in
  let ofdm = Ofdm.prepared () in
  let dct_dfg =
    let jpeg = Jpeg.prepared () in
    let cdfg = jpeg.Flow.cdfg in
    let heaviest = ref 0 in
    List.iter
      (fun i ->
        let d = (Hypar_ir.Cdfg.info cdfg i).Hypar_ir.Cdfg.dfg in
        let best = (Hypar_ir.Cdfg.info cdfg !heaviest).Hypar_ir.Cdfg.dfg in
        if Hypar_ir.Dfg.node_count d > Hypar_ir.Dfg.node_count best then
          heaviest := i)
      (Hypar_ir.Cdfg.block_ids cdfg);
    (Hypar_ir.Cdfg.info cdfg !heaviest).Hypar_ir.Cdfg.dfg
  in
  let fpga = Hypar_finegrain.Fpga.make ~area:1500 () in
  let cgc = Hypar_coarsegrain.Cgc.two_by_two 2 in
  let tests =
    [
      Test.make ~name:"frontend: compile OFDM"
        (Staged.stage (fun () ->
             ignore (Hypar_minic.Driver.compile_exn ~name:"ofdm" Ofdm.source)));
      Test.make ~name:"interp: run OFDM"
        (Staged.stage (fun () ->
             ignore
               (Hypar_profiling.Interp.run ~inputs:(Ofdm.inputs ())
                  ofdm.Flow.cdfg)));
      Test.make ~name:"temporal: partition DCT block"
        (Staged.stage (fun () ->
             ignore
               (Hypar_finegrain.Temporal.partition ~area:1500
                  ~size:(Hypar_finegrain.Fpga.op_area fpga) dct_dfg)));
      Test.make ~name:"schedule: DCT block on two 2x2"
        (Staged.stage (fun () ->
             ignore (Hypar_coarsegrain.Schedule.schedule cgc dct_dfg)));
      Test.make ~name:"engine: partition OFDM"
        (Staged.stage (fun () ->
             ignore
               (Flow.partition (platform ())
                  ~timing_constraint:Ofdm.timing_constraint ofdm)));
    ]
  in
  let grouped = Test.make_grouped ~name:"hypar" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-36s %16s\n" "benchmark" "ns/run";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "%-36s %16.0f\n" name est
         | Some _ | None -> Printf.printf "%-36s %16s\n" name "n/a")

(* ---- Dataflow: solver throughput and global-pass shrinkage -------------- *)

let dataflow_bench () =
  section_header "Dataflow — solver throughput and global-pass shrinkage";
  let module D = Hypar_ir.Dataflow in
  let module Passes = Hypar_ir.Passes in
  let module Cdfg = Hypar_ir.Cdfg in
  let srcs =
    [
      ("OFDM", Ofdm.source);
      ("JPEG", Jpeg.source);
      ("Sobel", Hypar_apps.Sobel.source);
      ("ADPCM", Hypar_apps.Adpcm.source);
    ]
  in
  let time_best ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let counts cdfg = (Cdfg.block_count cdfg, Cdfg.total_instrs cdfg) in
  let rows =
    List.map
      (fun (name, src) ->
        let raw = Hypar_minic.Driver.compile_exn ~name ~simplify:false src in
        let cfg = Cdfg.cfg raw in
        let iterations = (D.solve (module D.Liveness) cfg).D.iterations in
        let batch = 50 in
        let t =
          time_best ~reps:7 (fun () ->
              for _ = 1 to batch do
                ignore (D.solve (module D.Liveness) cfg);
                ignore (D.solve (module D.Reaching) cfg);
                ignore (D.solve (module D.Avail) cfg);
                ignore (D.solve (module D.Consts) cfg)
              done)
        in
        let solves_per_sec = float_of_int (4 * batch) /. t in
        let simplified = Passes.simplify ~verify:false raw in
        let optimized = Passes.optimize ~verify:false raw in
        let after_global pass =
          snd (counts (Passes.dead_code_eliminate (pass raw)))
        in
        ( name,
          counts raw,
          counts simplified,
          counts optimized,
          [
            ("const", after_global Passes.global_const_propagate);
            ("copy", after_global Passes.global_copy_propagate);
            ("cse", after_global Passes.global_cse);
          ],
          iterations,
          solves_per_sec ))
      srcs
  in
  Printf.printf
    "%-6s | %12s | %13s | %13s | %19s | %6s | %11s\n"
    "app" "raw blk/ins" "simplify ins" "optimize ins" "global pass ins"
    "iters" "solves/s";
  List.iter
    (fun (name, (rb, ri), (_, si), (ob, oi), globals, iters, sps) ->
      Printf.printf
        "%-6s | %5d /%5d | %13d | %6d /%5d | %s | %6d | %11.0f\n"
        name rb ri si ob oi
        (String.concat " "
           (List.map (fun (p, n) -> Printf.sprintf "%s:%d" p n) globals))
        iters sps)
    rows;
  (* acceptance gate: each global pass (after DCE) strictly shrinks the
     raw CDFG on at least two of the four apps *)
  let shrinkers pass_name =
    List.length
      (List.filter
         (fun (_, (_, ri), _, _, globals, _, _) ->
           List.assoc pass_name globals < ri)
         rows)
  in
  List.iter
    (fun p ->
      let n = shrinkers p in
      Printf.printf "global %-5s shrinks %d/4 apps%s\n" p n
        (if n >= 2 then "" else "  <-- FAIL (budget: >= 2)"))
    [ "const"; "copy"; "cse" ];
  if List.exists (fun p -> shrinkers p < 2) [ "const"; "copy"; "cse" ] then begin
    Printf.printf "FAIL: a global pass shrinks fewer than 2/4 apps\n";
    exit 1
  end;
  (* first perf snapshot: committed as BENCH_dataflow.json so later PRs
     can diff solver throughput and pipeline shrinkage *)
  let oc = open_out "BENCH_dataflow.json" in
  Printf.fprintf oc "{\n  \"section\": \"dataflow\",\n  \"apps\": [\n";
  List.iteri
    (fun i (name, (rb, ri), (sb, si), (ob, oi), globals, iters, sps) ->
      Printf.fprintf oc
        "    {\"app\": %S, \"raw\": {\"blocks\": %d, \"instrs\": %d},\n\
        \     \"simplify\": {\"blocks\": %d, \"instrs\": %d},\n\
        \     \"optimize\": {\"blocks\": %d, \"instrs\": %d},\n\
        \     \"global_pass_instrs\": {%s},\n\
        \     \"liveness_iterations\": %d, \"solves_per_sec\": %.0f}%s\n"
        name rb ri sb si ob oi
        (String.concat ", "
           (List.map (fun (p, n) -> Printf.sprintf "%S: %d" p n) globals))
        iters sps
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_dataflow.json\n";
  print_newline ()

(* ---- bytecode: decompiled frontend vs direct frontend ------------------- *)

let bytecode_bench () =
  section_header "Bytecode — decompiled frontend vs direct Mini-C frontend";
  let module Passes = Hypar_ir.Passes in
  let module Cdfg = Hypar_ir.Cdfg in
  let module B = Hypar_bytecode in
  let module Interp = Hypar_profiling.Interp in
  let apps =
    [
      ("OFDM", Ofdm.source, Ofdm.inputs ());
      ("JPEG", Jpeg.source, Jpeg.inputs ());
      ("Sobel", Hypar_apps.Sobel.source, Hypar_apps.Sobel.inputs ());
      ("ADPCM", Hypar_apps.Adpcm.source, Hypar_apps.Adpcm.inputs ());
    ]
  in
  let observed cdfg inputs =
    let r = Interp.run ~inputs cdfg in
    (r.Interp.return_value, List.sort compare r.Interp.arrays)
  in
  let rows =
    List.map
      (fun (name, src, inputs) ->
        let direct_raw =
          Hypar_minic.Driver.compile_exn ~name ~simplify:false src
        in
        let direct_opt = Passes.optimize ~verify:false direct_raw in
        let prog = B.Emit.program direct_raw in
        let bc_insns =
          List.length
            (List.filter
               (fun (_, item) ->
                 match item with B.Prog.Insn _ -> true | B.Prog.Label _ -> false)
               prog.B.Prog.code)
        in
        let bc_raw =
          B.Driver.compile_exn ~name ~optimize:false ~verify_ir:false
            (B.Prog.to_string prog)
        in
        let bc_opt = Passes.optimize ~verify:false bc_raw in
        let matches = observed direct_opt inputs = observed bc_opt inputs in
        ( name,
          bc_insns,
          Cdfg.total_instrs direct_raw,
          Cdfg.total_instrs direct_opt,
          Cdfg.total_instrs bc_raw,
          Cdfg.total_instrs bc_opt,
          matches ))
      apps
  in
  Printf.printf "%-6s | %8s | %10s | %10s | %8s | %8s | %6s\n" "app"
    "bc insns" "direct raw" "decomp raw" "direct-O" "decomp-O" "interp";
  List.iter
    (fun (name, bc, dr, dopt, br, bopt, matches) ->
      Printf.printf "%-6s | %8d | %10d | %10d | %8d | %8d | %6s\n" name bc dr
        br dopt bopt
        (if matches then "match" else "DIFFER"))
    rows;
  (* acceptance gates: the decompiled program must behave identically under
     the interpreter, and after -O the recovered CDFG must be within 10% of
     the direct frontend's instruction count *)
  let failed = ref false in
  List.iter
    (fun (name, _, _, dopt, _, bopt, matches) ->
      if not matches then begin
        Printf.printf "FAIL: %s interpreter outputs differ across frontends\n"
          name;
        failed := true
      end;
      if 10 * abs (bopt - dopt) > dopt then begin
        Printf.printf
          "FAIL: %s decompiled -O instrs %d deviate >10%% from direct %d\n"
          name bopt dopt;
        failed := true
      end)
    rows;
  if !failed then exit 1;
  Printf.printf "all apps: interpreter match, -O instr counts within 10%%\n";
  let oc = open_out "BENCH_bytecode.json" in
  Printf.fprintf oc "{\n  \"section\": \"bytecode\",\n  \"apps\": [\n";
  List.iteri
    (fun i (name, bc, dr, dopt, br, bopt, matches) ->
      Printf.fprintf oc
        "    {\"app\": %S, \"bytecode_insns\": %d,\n\
        \     \"direct\": {\"raw\": %d, \"optimized\": %d},\n\
        \     \"decompiled\": {\"raw\": %d, \"optimized\": %d},\n\
        \     \"interp_match\": %b}%s\n"
        name bc dr dopt br bopt matches
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_bytecode.json\n";
  print_newline ()

(* ---- interp: compiled backend vs tree oracle + engine delta updates ------ *)

(* Two speedup gates for the compiled execution backend.  First the
   profiling interpreter itself: each application runs under the
   tree-walking oracle and under Exec.run (flatten + execute, so the
   compile cost is charged to every run) on the same inputs; JPEG — the
   largest workload — must come out at least 3x faster or the bench
   exits 1.  Then the engine: pricing every prefix of a partitioning
   trajectory by full recharacterisation (what Engine.run used to do)
   versus replaying the same moves through Engine.Inc's delta updates. *)
let interp_bench () =
  section_header "Interp — compiled backend vs tree-walking oracle";
  let module Interp = Hypar_profiling.Interp in
  let module Exec = Hypar_profiling.Exec in
  let apps =
    [
      ("OFDM", Ofdm.source, Ofdm.inputs ());
      ("JPEG", Jpeg.source, Jpeg.inputs ());
      ("Sobel", Hypar_apps.Sobel.source, Hypar_apps.Sobel.inputs ());
      ("ADPCM", Hypar_apps.Adpcm.source, Hypar_apps.Adpcm.inputs ());
    ]
  in
  let time_best ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  Printf.printf "%-6s | %12s | %12s | %8s | %6s\n" "app" "tree ms" "compiled ms"
    "speedup" "equal";
  let rows =
    List.map
      (fun (name, src, inputs) ->
        let cdfg = Hypar_minic.Driver.compile_exn ~name src in
        let r_tree = ref None and r_comp = ref None in
        let t_tree =
          time_best ~reps:3 (fun () -> r_tree := Some (Interp.run ~inputs cdfg))
        in
        let t_comp =
          time_best ~reps:3 (fun () -> r_comp := Some (Exec.run ~inputs cdfg))
        in
        let equal = !r_tree = !r_comp in
        let speedup = t_tree /. t_comp in
        Printf.printf "%-6s | %12.3f | %12.3f | %7.2fx | %6s\n" name
          (t_tree *. 1e3) (t_comp *. 1e3) speedup
          (if equal then "yes" else "NO");
        (name, t_tree, t_comp, speedup, equal))
      apps
  in
  let failed = ref false in
  List.iter
    (fun (name, _, _, speedup, equal) ->
      if not equal then begin
        Printf.printf "FAIL: %s results differ across backends\n" name;
        failed := true
      end;
      if name = "JPEG" && speedup < 3.0 then begin
        Printf.printf "FAIL: JPEG compiled speedup %.2fx below the 3x budget\n"
          speedup;
        failed := true
      end)
    rows;
  (* engine: full recharacterisation of every trajectory prefix vs the
     same trajectory replayed through the incremental state *)
  let prepared = Ofdm.prepared () in
  let pl = platform () in
  let r =
    Engine.run pl ~timing_constraint:1 prepared.Flow.cdfg prepared.Flow.profile
  in
  let prefixes =
    List.mapi
      (fun i _ -> List.filteri (fun j _ -> j <= i) r.Engine.moved)
      r.Engine.moved
  in
  let batch = 50 in
  let t_full =
    time_best ~reps:5 (fun () ->
        for _ = 1 to batch do
          let full =
            Engine.evaluate pl prepared.Flow.cdfg prepared.Flow.profile
          in
          ignore (full []);
          List.iter (fun prefix -> ignore (full prefix)) prefixes
        done)
  in
  let inc = Engine.Inc.create pl prepared.Flow.cdfg prepared.Flow.profile in
  let t_delta =
    time_best ~reps:5 (fun () ->
        for _ = 1 to batch do
          Engine.Inc.reset inc;
          ignore (Engine.Inc.times inc);
          List.iter
            (fun b ->
              Engine.Inc.move inc b;
              ignore (Engine.Inc.times inc))
            r.Engine.moved
        done)
  in
  let engine_speedup = t_full /. t_delta in
  Printf.printf
    "engine (OFDM, %d moves): full %.3f ms, delta %.3f ms -> %.2fx\n"
    (List.length r.Engine.moved)
    (t_full /. float_of_int batch *. 1e3)
    (t_delta /. float_of_int batch *. 1e3)
    engine_speedup;
  if !failed then exit 1;
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc "{\n  \"section\": \"interp\",\n  \"apps\": [\n";
  List.iteri
    (fun i (name, t_tree, t_comp, speedup, equal) ->
      Printf.fprintf oc
        "    {\"app\": %S, \"tree_ms\": %.3f, \"compiled_ms\": %.3f, \
         \"speedup\": %.2f, \"identical\": %b}%s\n"
        name (t_tree *. 1e3) (t_comp *. 1e3) speedup equal
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"engine\": {\"moves\": %d, \"full_ms\": %.3f, \"delta_ms\": %.3f, \
     \"speedup\": %.2f}\n\
     }\n"
    (List.length r.Engine.moved)
    (t_full /. float_of_int batch *. 1e3)
    (t_delta /. float_of_int batch *. 1e3)
    engine_speedup;
  close_out oc;
  Printf.printf "wrote BENCH_interp.json\n";
  print_newline ()

(* ---- fuzz: generator + oracle throughput, determinism gate --------------- *)

(* The fuzzing subsystem has to stay fast enough that CI's bounded smoke
   campaign is cheap and local campaigns cover thousands of programs per
   minute: gate the generator alone (AST + pretty-print) and the full
   per-program judgement (generate, compile 3 ways, run 6 interpreter
   configurations, compare).  Also a hard determinism gate — the jobs=1
   and jobs=2 campaign reports must be byte-identical, since every cram
   test and CI replay relies on that. *)
let fuzz_bench () =
  section_header "Fuzz — generator and oracle throughput";
  let module Runner = Hypar_fuzzgen.Runner in
  let n_gen = 2_000 and n_oracle = 150 in
  let t0 = Unix.gettimeofday () in
  let bytes = ref 0 in
  for seed = 1 to n_gen do
    bytes := !bytes + String.length (Hypar_fuzzgen.Gen.source seed)
  done;
  let t_gen = Unix.gettimeofday () -. t0 in
  let gen_rate = float_of_int n_gen /. t_gen in
  Printf.printf "generator: %d programs (%.1f KiB) in %.3f s -> %.0f prog/s\n"
    n_gen
    (float_of_int !bytes /. 1024.)
    t_gen gen_rate;
  let t0 = Unix.gettimeofday () in
  let r1 = Runner.run { Runner.default with Runner.seed = 21; count = n_oracle } in
  let t_oracle = Unix.gettimeofday () -. t0 in
  let oracle_rate = float_of_int n_oracle /. t_oracle in
  Printf.printf
    "oracle matrix: %d programs in %.3f s -> %.1f prog/s (%d passes)\n"
    n_oracle t_oracle oracle_rate r1.Runner.passes;
  let r2 =
    Runner.run { Runner.default with Runner.seed = 21; count = n_oracle; jobs = 2 }
  in
  let deterministic =
    Runner.to_text r1 = Runner.to_text r2
    && Runner.to_json r1 = Runner.to_json r2
  in
  Printf.printf "jobs=1 vs jobs=2 reports identical: %s\n"
    (if deterministic then "yes" else "NO");
  let failed = ref false in
  if not deterministic then begin
    Printf.printf "FAIL: campaign report depends on --jobs\n";
    failed := true
  end;
  if r1.Runner.passes <> n_oracle then begin
    Printf.printf "FAIL: %d safe-grammar programs did not pass the oracle\n"
      (n_oracle - r1.Runner.passes);
    failed := true
  end;
  (* soft floors, far below observed rates, to catch order-of-magnitude
     regressions without flaking on slow CI machines *)
  if gen_rate < 200. then begin
    Printf.printf "FAIL: generator below 200 prog/s\n";
    failed := true
  end;
  if oracle_rate < 1. then begin
    Printf.printf "FAIL: oracle matrix below 1 prog/s\n";
    failed := true
  end;
  if !failed then exit 1;
  let oc = open_out "BENCH_fuzz.json" in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"fuzz\",\n\
    \  \"generator\": {\"programs\": %d, \"seconds\": %.3f, \"rate_per_s\": \
     %.0f},\n\
    \  \"oracle\": {\"programs\": %d, \"seconds\": %.3f, \"rate_per_s\": %.1f, \
     \"passes\": %d},\n\
    \  \"deterministic_across_jobs\": %b\n\
     }\n"
    n_gen t_gen gen_rate n_oracle t_oracle oracle_rate r1.Runner.passes
    deterministic;
  close_out oc;
  Printf.printf "wrote BENCH_fuzz.json\n";
  print_newline ()

(* ---- driver -------------------------------------------------------------- *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("ablation:afpga", ablation_afpga);
    ("ablation:cgc", ablation_cgc);
    ("ablation:clock-ratio", ablation_clock_ratio);
    ("ablation:comm", ablation_comm);
    ("ablation:strategy", ablation_strategy);
    ("ablation:temporal", ablation_temporal);
    ("ablation:reconfig", ablation_reconfig);
    ("ablation:priority", ablation_priority);
    ("ablation:scaling", ablation_scaling);
    ("explore", explore_bench);
    ("obs", obs_bench);
    ("resilience", resilience_bench);
    ("serve", serve_bench);
    ("extension:pipeline", extension_pipeline);
    ("extension:energy", extension_energy);
    ("extension:modulo", extension_modulo);
    ("dataflow", dataflow_bench);
    ("bytecode", bytecode_bench);
    ("interp", interp_bench);
    ("fuzz", fuzz_bench);
    ("soak", soak_bench);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat ", " (List.map fst sections));
        exit 2)
    requested
