(* Design-space exploration with the Hypar_explore engine: sweep A_FPGA,
   the CGC count and the clock ratio for a matrix-multiplication workload,
   printing one series per axis (the shape behind the paper's §4
   observations).  Each sweep is a declarative Space expanded and
   evaluated by Driver.run — no hand-rolled grid loops.

   Run with:  dune exec examples/platform_sweep.exe *)

module Flow = Hypar_core.Flow
module Engine = Hypar_core.Engine
module Space = Hypar_explore.Space
module Driver = Hypar_explore.Driver
module Eval = Hypar_explore.Eval

let results space prepared =
  match Driver.run ~workload:"matmul16" prepared space with
  | Ok summary -> summary.Driver.results
  | Error msg -> failwith msg

let iter_ok f rs =
  Array.iter
    (fun (r : Driver.point_result) ->
      match r.Driver.outcome with
      | Ok m -> f r.Driver.point m
      | Error msg ->
        Printf.printf "%8d  FAILED: %s\n" r.Driver.point.Space.area msg)
    rs

let () =
  let n = 16 in
  let inputs =
    [
      ("a", Array.init (n * n) (fun i -> (i * 7) mod 23));
      ("b", Array.init (n * n) (fun i -> (i * 5) mod 19));
    ]
  in
  let prepared =
    Flow.prepare ~name:"matmul16" ~inputs (Hypar_apps.Synth.matmul_source ~n)
  in
  let budget =
    match
      Eval.evaluate prepared
        { Space.area = 1500; cgcs = 2; rows = 2; cols = 2; clock_ratio = 3;
          timing = max_int }
    with
    | Ok m -> m.Eval.initial.Engine.t_total / 2
    | Error msg -> failwith msg
  in
  Printf.printf "matmul %dx%d — timing constraint %d cycles\n\n" n n budget;

  Printf.printf "A_FPGA sweep (two 2x2 CGCs):\n";
  Printf.printf "%8s %14s %14s %10s %8s\n" "A_FPGA" "initial" "final" "reduction"
    "moved";
  results
    (Space.make ~areas:[ 500; 1000; 1500; 2500; 5000; 10000 ] ~cgcs:[ 2 ]
       ~timings:[ budget ] ())
    prepared
  |> iter_ok (fun p m ->
         Printf.printf "%8d %14d %14d %9.1f%% %8d\n" p.Space.area
           m.Eval.initial.Engine.t_total m.Eval.final.Engine.t_total
           m.Eval.reduction
           (List.length m.Eval.moved));

  Printf.printf "\nCGC count sweep (A_FPGA = 1500):\n";
  Printf.printf "%8s %14s %14s %10s\n" "CGCs" "cycles-in-CGC" "final" "reduction";
  results
    (Space.make ~areas:[ 1500 ] ~cgcs:[ 1; 2; 3; 4 ] ~timings:[ budget ] ())
    prepared
  |> iter_ok (fun p m ->
         Printf.printf "%8d %14d %14d %9.1f%%\n" p.Space.cgcs
           m.Eval.coarse_cgc_cycles m.Eval.final.Engine.t_total m.Eval.reduction);

  Printf.printf "\nClock-ratio sweep (A_FPGA = 1500, two 2x2 CGCs):\n";
  Printf.printf "%8s %14s %10s\n" "ratio" "final" "reduction";
  results
    (Space.make ~areas:[ 1500 ] ~cgcs:[ 2 ] ~clock_ratios:[ 1; 2; 3; 4; 6 ]
       ~timings:[ budget ] ())
    prepared
  |> iter_ok (fun p m ->
         Printf.printf "%8d %14d %9.1f%%\n" p.Space.clock_ratio
           m.Eval.final.Engine.t_total m.Eval.reduction)
